package p4rt

import (
	"bytes"
	"math"
	"net"
	"runtime"
	"testing"
	"time"
)

// TestServerReplayCacheIdempotent exercises the replay cache at the
// frame level: after a hello establishes a session, a retry-flagged
// re-send of an executed request is answered from the cache (same
// response bytes, no second execution), while ResetSessions — the
// switch-restart model — forgets everything and lets the retry execute
// again.
func TestServerReplayCacheIdempotent(t *testing.T) {
	dev := newFakeDevice()
	srv := NewServer(dev, nil)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	defer close(dev.packetIns)

	conn, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	if err := WriteRawFrame(conn, RawFrame{Kind: FrameHello, ID: 77}); err != nil {
		t.Fatal(err)
	}
	writeReq := func(id uint64, tableID uint32, retry bool) RawFrame {
		t.Helper()
		kind := FrameWrite
		if retry {
			kind |= FrameRetryFlag
		}
		req := WriteRequest{Updates: []Update{{Type: Insert, Entry: TableEntry{TableID: tableID}}}}
		if err := WriteRawFrame(conn, RawFrame{Kind: kind, ID: id, Payload: encodeWriteRequest(&req)}); err != nil {
			t.Fatal(err)
		}
		resp, err := ReadRawFrame(conn)
		if err != nil {
			t.Fatal(err)
		}
		if resp.Kind != FrameResponse || resp.ID != id {
			t.Fatalf("response frame = kind %d id %d, want response to %d", resp.Kind, resp.ID, id)
		}
		return resp
	}
	executed := func() int {
		dev.mu.Lock()
		defer dev.mu.Unlock()
		return len(dev.entries)
	}

	first := writeReq(1, 100, false)
	if executed() != 1 {
		t.Fatalf("device holds %d entries after one write, want 1", executed())
	}

	// Retry of an executed id: replayed, not re-executed.
	replayed := writeReq(1, 100, true)
	if executed() != 1 {
		t.Errorf("retry re-executed: device holds %d entries, want 1", executed())
	}
	if !bytes.Equal(replayed.Payload, first.Payload) {
		t.Error("replayed response differs from the original")
	}

	// Retry of an id the session never executed: runs normally (the
	// first send may be the one that was lost).
	writeReq(2, 200, true)
	if executed() != 2 {
		t.Errorf("unseen retry-flagged request not executed: %d entries, want 2", executed())
	}

	// A restarted switch has no replay cache: the same retry executes
	// again. (Recovering the duplicate effect is the self-healing
	// layer's job, not the transport's.)
	srv.ResetSessions()
	writeReq(1, 100, true)
	if executed() != 3 {
		t.Errorf("retry after ResetSessions served from a cache that should be gone: %d entries, want 3", executed())
	}
}

// TestTimeoutLeaksNothing: repeated timed-out RPCs must leave no
// pending-call entries and no lingering goroutines — the regression
// gate for the timeout path's timer cleanup.
func TestTimeoutLeaksNothing(t *testing.T) {
	cli, err := Dial(silentListener(t).String())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	cli.SetTimeout(2 * time.Millisecond)

	before := runtime.NumGoroutine()
	for i := 0; i < 50; i++ {
		if _, err := cli.Read(ReadRequest{}); err == nil {
			t.Fatal("Read against a silent server succeeded")
		}
	}
	if n := cli.PendingRPCs(); n != 0 {
		t.Errorf("%d pending RPCs leaked after 50 timeouts", n)
	}
	// Give any stragglers a moment to exit, then compare. A leak of one
	// goroutine per timed-out RPC would show up as ~50 extras.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+3 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines grew from %d to %d across 50 timed-out RPCs", before, runtime.NumGoroutine())
}

// TestBackoffDelayOverflowSafe: absurd attempt counts and near-MaxInt64
// Initial values clamp to Max instead of overflowing negative.
func TestBackoffDelayOverflowSafe(t *testing.T) {
	b := Backoff{Initial: 100 * time.Millisecond, Max: time.Second}
	for _, attempt := range []int{62, 63, 64, 100, 1000, 1 << 30} {
		if got := b.Delay(attempt); got != time.Second {
			t.Errorf("Delay(%d) = %v, want the %v cap", attempt, got, time.Second)
		}
	}
	huge := Backoff{Initial: time.Duration(1) << 62, Max: time.Duration(math.MaxInt64)}
	for attempt := 1; attempt < 10; attempt++ {
		if got := huge.Delay(attempt); got < 0 {
			t.Errorf("Delay(%d) with Initial=1<<62 went negative: %v", attempt, got)
		}
	}
	if got := (Backoff{Initial: time.Second, Max: time.Second}).Delay(0); got != 0 {
		t.Errorf("Delay(0) = %v, want 0 (first attempt is immediate)", got)
	}
	if got := (Backoff{Initial: time.Second, Max: time.Second}).Delay(-5); got != 0 {
		t.Errorf("Delay(-5) = %v, want 0", got)
	}
}

// TestBackoffJitterDeterministic: jitter decorrelates attempts without
// breaking reproducibility — a pure function of the attempt number,
// bounded by [d, d+Jitter), and skipped rather than overflowed at the
// top of the Duration range.
func TestBackoffJitterDeterministic(t *testing.T) {
	b := Backoff{Initial: 100 * time.Millisecond, Max: 10 * time.Second, Jitter: 50 * time.Millisecond}
	base := Backoff{Initial: 100 * time.Millisecond, Max: 10 * time.Second}
	varied := false
	for attempt := 1; attempt <= 8; attempt++ {
		d1, d2 := b.Delay(attempt), b.Delay(attempt)
		if d1 != d2 {
			t.Fatalf("Delay(%d) not deterministic: %v vs %v", attempt, d1, d2)
		}
		lo := base.Delay(attempt)
		if d1 < lo || d1 >= lo+b.Jitter {
			t.Errorf("Delay(%d) = %v outside [%v, %v)", attempt, d1, lo, lo+b.Jitter)
		}
		if d1 != lo {
			varied = true
		}
	}
	if !varied {
		t.Error("jitter never moved any delay off its base value")
	}

	// Near MaxInt64 the jitter is skipped, never wrapped negative.
	top := Backoff{Initial: time.Duration(math.MaxInt64), Max: time.Duration(math.MaxInt64), Jitter: time.Hour}
	for attempt := 1; attempt <= 4; attempt++ {
		if got := top.Delay(attempt); got < 0 {
			t.Errorf("Delay(%d) at MaxInt64 wrapped negative: %v", attempt, got)
		}
	}
}
