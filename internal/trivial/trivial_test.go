package trivial

import (
	"testing"

	"switchv/internal/p4/p4info"
	"switchv/internal/switchsim"
	"switchv/models"
)

func run(role string, faults ...switchsim.Fault) Result {
	sw := switchsim.New(role, faults...)
	info := p4info.New(models.MustLoad(role))
	return Run(info, sw, sw)
}

func TestCleanSwitchPasses(t *testing.T) {
	for _, role := range models.Names() {
		if res := run(role); res.FailedTest != "" {
			t.Errorf("%s: trivial suite failed at %q: %v", role, res.FailedTest, res.Err)
		}
	}
}

func TestFaultDetection(t *testing.T) {
	cases := []struct {
		fault switchsim.Fault
		want  string // first failing test, "" = not found by the suite
	}{
		{switchsim.FaultP4InfoPushIgnored, "Table entry programming"},
		{switchsim.FaultRejectACLEntries, "Table entry programming"},
		{switchsim.FaultReadDropsTernary, "Read all tables"},
		{switchsim.FaultPacketOutPuntedBack, "Packet-out"},
		{switchsim.FaultPortSpeedDrop, ""}, // port 12 is not exercised
		{switchsim.FaultTTL1NoTrap, ""},
		{switchsim.FaultZeroBytesAccepted, ""},
		{switchsim.FaultBatchAbortOnDeleteMissing, ""},
		// The LPM tiebreak bug needs two correlated entries matching the
		// same destination — precisely the class the trivial suite cannot
		// catch (§8 "P4pktgen").
		{switchsim.FaultLPMTiebreakWrong, ""},
		{switchsim.FaultVRF1Conflict, "Packet forwarding"},
		{switchsim.FaultDSCPRemarkZero, ""}, // test packet has DSCP 0
	}
	for _, c := range cases {
		t.Run(string(c.fault), func(t *testing.T) {
			res := run("middleblock", c.fault)
			if res.FailedTest != c.want {
				t.Errorf("failed at %q (err %v), want %q", res.FailedTest, res.Err, c.want)
			}
		})
	}
}

func TestNamesStable(t *testing.T) {
	if len(TestNames) != 6 {
		t.Fatalf("TestNames = %v", TestNames)
	}
}
