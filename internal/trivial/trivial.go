// Package trivial implements the paper's "trivial suite" of traditional
// integration tests (§6.2), used to estimate how many SwitchV-found bugs
// simpler testing would have caught. The six tests run in sequence; a bug
// is attributed to the first test that fails.
package trivial

import (
	"bytes"
	"fmt"
	"time"

	"switchv/internal/p4/p4info"
	"switchv/internal/p4/pdpi"
	"switchv/internal/p4rt"
	"switchv/internal/packet"
	"switchv/internal/switchsim"
	"switchv/internal/testutil"
)

// DataPlane matches the harness's injection interface.
type DataPlane = p4rt.DataPlaneDevice

// TestNames lists the suite in execution order, matching Table 2's rows.
var TestNames = []string{
	"Set P4Info",
	"Table entry programming",
	"Read all tables",
	"Packet-in",
	"Packet-out",
	"Packet forwarding",
}

// EgressObserver is optionally implemented by switches whose directly
// transmitted frames (PacketOut) can be captured.
type EgressObserver interface {
	TakeEgress() []switchsim.EgressFrame
}

// Result is the outcome of one suite run.
type Result struct {
	// FailedTest is the first failing test's name, or "" if all passed.
	FailedTest string
	// Err describes the failure.
	Err error
}

// Run executes the suite against a switch. Entries for test 2 come from
// the shared routing fixture, which touches every table of the model.
func Run(info *p4info.Info, dev p4rt.Device, dp DataPlane) Result {
	s := &suite{info: info, dev: dev, dp: dp}
	steps := []func() error{
		s.setP4Info,
		s.programEntries,
		s.readAllTables,
		s.packetIn,
		s.packetOut,
		s.packetForwarding,
	}
	for i, step := range steps {
		if err := step(); err != nil {
			return Result{FailedTest: TestNames[i], Err: err}
		}
	}
	return Result{}
}

type suite struct {
	info    *p4info.Info
	dev     p4rt.Device
	dp      DataPlane
	entries []*pdpi.Entry
}

// setP4Info pushes the pipeline configuration.
func (s *suite) setP4Info() error {
	return s.dev.SetForwardingPipelineConfig(p4rt.ForwardingPipelineConfig{P4Info: s.info.Text()})
}

// programEntries installs a rule in every table, including an ACL entry
// that punts packets to the controller and an IPv4 route.
func (s *suite) programEntries() error {
	store := pdpi.NewStore()
	testutil.RoutingFixture(s.info.Program(), store)
	s.entries = testutil.InstallOrder(s.info, store)
	for _, e := range s.entries {
		resp := s.dev.Write(p4rt.WriteRequest{Updates: []p4rt.Update{{Type: p4rt.Insert, Entry: p4rt.ToWire(e)}}})
		if !resp.OK() {
			return fmt.Errorf("installing %s: %s", e, resp.String())
		}
	}
	return nil
}

// readAllTables reads back all tables and compares with the installed set.
func (s *suite) readAllTables() error {
	rr, err := s.dev.Read(p4rt.ReadRequest{})
	if err != nil {
		return err
	}
	got := map[string]bool{}
	for i := range rr.Entries {
		e, err := p4rt.FromWire(s.info, &rr.Entries[i])
		if err != nil {
			return fmt.Errorf("read-back entry %d malformed: %v", i, err)
		}
		got[e.Key()] = true
	}
	for _, want := range s.entries {
		if !got[want.Key()] {
			return fmt.Errorf("installed entry missing from read: %s", want.Key())
		}
	}
	if len(got) != len(s.entries) {
		return fmt.Errorf("read %d entries, installed %d", len(got), len(s.entries))
	}
	return nil
}

// packetIn sends a packet matching the punt ACL rule and checks that it
// arrives on the packet-io channel.
func (s *suite) packetIn() error {
	frame := bgpFrame()
	res, err := s.dp.InjectFrame(p4rt.InjectRequest{Port: 1, Frame: frame})
	if err != nil {
		return err
	}
	if !res.Punted {
		return fmt.Errorf("punt-rule packet was not punted (result %+v)", res)
	}
	select {
	case pin, ok := <-s.dev.PacketIns():
		if !ok {
			return fmt.Errorf("packet-in stream closed")
		}
		if len(pin.Payload) == 0 {
			return fmt.Errorf("empty packet-in payload")
		}
	case <-time.After(time.Second):
		return fmt.Errorf("no packet-in received on the stream")
	}
	return nil
}

// packetOut sends a packet via packet-out for several ports and verifies
// the switch transmits it on those ports.
func (s *suite) packetOut() error {
	obs, ok := s.dp.(EgressObserver)
	if !ok {
		return nil // no capture available; vacuous pass
	}
	obs.TakeEgress() // drain
	payload := []byte("trivial-packet-out")
	for _, port := range []uint16{1, 2, 3} {
		if err := s.dev.PacketOut(p4rt.PacketOut{Payload: payload, EgressPort: port}); err != nil {
			return fmt.Errorf("packet-out on port %d: %v", port, err)
		}
	}
	// Packet-outs must not come back as packet-ins.
	select {
	case pin := <-s.dev.PacketIns():
		return fmt.Errorf("packet-out was punted back to the controller (%d bytes)", len(pin.Payload))
	default:
	}
	frames := obs.TakeEgress()
	seen := map[uint16]bool{}
	for _, f := range frames {
		if bytes.Equal(f.Frame, payload) {
			seen[f.Port] = true
		}
	}
	for _, port := range []uint16{1, 2, 3} {
		if !seen[port] {
			return fmt.Errorf("packet-out frame did not egress on port %d", port)
		}
	}
	return nil
}

// packetForwarding sends an IPv4 packet and checks it is forwarded
// according to the route installed earlier.
func (s *suite) packetForwarding() error {
	res, err := s.dp.InjectFrame(p4rt.InjectRequest{Port: 1, Frame: testutil.IPv4UDP("10.1.2.3", 64, 2000)})
	if err != nil {
		return err
	}
	if res.Punted || res.Dropped {
		return fmt.Errorf("routed packet not forwarded: %+v", res)
	}
	if res.EgressPort != 11 {
		return fmt.Errorf("forwarded to port %d, want 11", res.EgressPort)
	}
	p := packet.NewPacket(res.Frame, packet.LayerTypeEthernet)
	if p.IPv4() == nil || p.IPv4().TTL != 63 {
		return fmt.Errorf("output packet not rewritten correctly: %s", p)
	}
	return nil
}

// bgpFrame matches the fixture's TCP/179 punt rule.
func bgpFrame() []byte {
	ip := &packet.IPv4{TTL: 64, Protocol: packet.IPProtocolTCP,
		SrcIP: packet.MustParseIPv4("192.168.1.1"), DstIP: packet.MustParseIPv4("10.1.2.3")}
	tcp := &packet.TCP{SrcPort: 33333, DstPort: 179}
	tcp.SetNetworkLayerForChecksum(ip.SrcIP[:], ip.DstIP[:])
	data, err := packet.Serialize(packet.SerializeOptions{FixLengths: true, ComputeChecksums: true},
		&packet.Ethernet{DstMAC: testutil.RouterMAC, EtherType: packet.EtherTypeIPv4}, ip, tcp)
	if err != nil {
		panic(err)
	}
	return data
}
