package experiments

import (
	"strings"
	"testing"

	"switchv/internal/bugdb"
	"switchv/internal/switchsim"
)

var tinyOpts = Options{FuzzRequests: 20, FuzzUpdates: 15, Entries: 200}

func TestRunFaultCampaign(t *testing.T) {
	det, err := RunFaultCampaign("PINS", switchsim.FaultTTL1NoTrap, tinyOpts)
	if err != nil {
		t.Fatal(err)
	}
	if det.Component != switchsim.CompHardware {
		t.Errorf("component = %q", det.Component)
	}
	found := false
	for _, tool := range det.DetectedBy {
		if tool == "p4-symbolic" {
			found = true
		}
	}
	if !found {
		t.Errorf("TTL trap fault not found by p4-symbolic: %v", det.DetectedBy)
	}
}

func TestAggregations(t *testing.T) {
	dets := []FaultDetection{
		{Fault: "a", Component: "X", DetectedBy: []string{"p4-fuzzer"}, CatalogTool: "p4-fuzzer"},
		{Fault: "b", Component: "X", DetectedBy: []string{"p4-symbolic"}, CatalogTool: "p4-symbolic", TrivialTest: "Packet-in"},
		{Fault: "c", Component: "Y", DetectedBy: nil, CatalogTool: "p4-fuzzer"},
		{Fault: "d", Component: "Y", DetectedBy: []string{"p4-fuzzer", "p4-symbolic"}, CatalogTool: "p4-symbolic"},
	}
	rows := AggregateTable1(dets)
	if len(rows) != 2 {
		t.Fatalf("rows = %+v", rows)
	}
	if rows[0].Component != "X" || rows[0].Bugs != 2 || rows[0].Fuzzer != 1 || rows[0].Symbolic != 1 {
		t.Errorf("row X = %+v", rows[0])
	}
	if rows[1].Bugs != 1 || rows[1].Symbolic != 1 {
		t.Errorf("row Y = %+v", rows[1])
	}
	counts, total := AggregateTable2(dets)
	if total != 4 || counts["Packet-in"] != 1 || counts[""] != 3 {
		t.Errorf("table2 = %v / %d", counts, total)
	}
	out := RenderDetections(dets)
	if !strings.Contains(out, "NOT DETECTED") {
		t.Errorf("render: %s", out)
	}
}

func TestTable3Small(t *testing.T) {
	row, err := Table3("middleblock", 200, 10, 20, 3)
	if err != nil {
		t.Fatal(err)
	}
	if row.Goals == 0 || row.Covered == 0 {
		t.Errorf("row = %+v", row)
	}
	if row.WithCache >= row.Generation {
		t.Errorf("cache (%v) not faster than generation (%v)", row.WithCache, row.Generation)
	}
	if row.FuzzPerSec <= 0 {
		t.Errorf("fuzz rate = %f", row.FuzzPerSec)
	}
	out := RenderTable3([]Table3Row{row})
	for _, want := range []string{"Generation (w/c)", "Entries/s", "middleblock"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestEntriesHelper(t *testing.T) {
	if len(Entries("middleblock", 300, 1)) == 0 {
		t.Error("no entries")
	}
}

func TestStackRoles(t *testing.T) {
	if stackRole("PINS") != "middleblock" || stackRole("Cerberus") != "wan" {
		t.Error("stack role mapping")
	}
	for _, s := range bugdb.Stacks() {
		if len(bugdb.LiveFaults(s)) == 0 {
			t.Errorf("no live faults for %s", s)
		}
	}
}
