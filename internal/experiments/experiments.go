// Package experiments implements the paper's evaluation experiments
// (Tables 1-3 and Figure 7) on top of the simulated switch stacks, so the
// replay command and the benchmark harness share one implementation.
package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"switchv/internal/bugdb"
	"switchv/internal/fuzzer"
	"switchv/internal/p4/p4info"
	"switchv/internal/p4/pdpi"
	"switchv/internal/switchsim"
	"switchv/internal/switchv"
	"switchv/internal/symbolic"
	"switchv/internal/trivial"
	"switchv/internal/workload"
	"switchv/models"
)

// stackRole maps the paper's stacks to the model each was validated with.
func stackRole(stack string) string {
	if stack == "Cerberus" {
		return "wan"
	}
	return "middleblock"
}

// FaultDetection is the live result for one injected fault.
type FaultDetection struct {
	Fault     switchsim.Fault
	Component string
	// DetectedBy lists the tools whose campaign produced incidents.
	DetectedBy []string
	// TrivialTest is the first trivial-suite test that failed ("" = none).
	TrivialTest string
	// CatalogTool is the catalog's attribution (set by AllDetections).
	CatalogTool string
}

// Options tunes the live campaigns (smaller = faster).
type Options struct {
	FuzzRequests int
	FuzzUpdates  int
	Entries      int
	Seed         int64
}

func (o *Options) setDefaults() {
	if o.FuzzRequests == 0 {
		o.FuzzRequests = 250
	}
	if o.FuzzUpdates == 0 {
		o.FuzzUpdates = 25
	}
	if o.Entries == 0 {
		o.Entries = 320
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
}

// RunFaultCampaign validates one switch-with-fault using both tools and
// the trivial suite, reporting what detected it.
func RunFaultCampaign(stack string, fault switchsim.Fault, opts Options) (FaultDetection, error) {
	opts.setDefaults()
	role := stackRole(stack)
	meta, _ := switchsim.Meta(fault)
	det := FaultDetection{Fault: fault, Component: meta.Component}

	prog := models.MustLoad(role)
	info := p4info.New(prog)

	// p4-fuzzer campaign on a fresh switch.
	{
		sw := switchsim.New(role, fault)
		h := switchv.New(info, sw, sw)
		if err := h.PushPipeline(); err == nil {
			rep, err := h.RunControlPlane(fuzzer.Options{
				Seed:               opts.Seed,
				NumRequests:        opts.FuzzRequests,
				UpdatesPerRequest:  opts.FuzzUpdates,
				StopAfterIncidents: 1, // bug hunting: first incident suffices
			})
			if err != nil {
				return det, err
			}
			if len(rep.Incidents) > 0 {
				det.DetectedBy = append(det.DetectedBy, "p4-fuzzer")
			}
		}
		sw.Close()
	}

	// p4-symbolic campaign on a fresh switch.
	{
		sw := switchsim.New(role, fault)
		h := switchv.New(info, sw, sw)
		if err := h.PushPipeline(); err == nil {
			entries := workload.MustEntries(prog, opts.Entries, opts.Seed)
			rep, err := h.RunDataPlane(entries, switchv.DataPlaneOptions{
				Coverage: symbolic.CoverBranches,
				Churn:    true,
			})
			if err != nil {
				return det, err
			}
			if len(rep.Incidents) > 0 {
				det.DetectedBy = append(det.DetectedBy, "p4-symbolic")
			}
		} else {
			// A broken pipeline push is itself a p4-symbolic-visible bug
			// (validation cannot even start).
			det.DetectedBy = append(det.DetectedBy, "p4-symbolic")
		}
		sw.Close()
	}

	// Trivial suite on a fresh switch.
	{
		sw := switchsim.New(role, fault)
		res := trivial.Run(info, sw, sw)
		det.TrivialTest = res.FailedTest
		sw.Close()
	}
	return det, nil
}

// AllDetections runs the fault campaign for every live-injectable bug of a
// stack once; Table1Live and Table2Live aggregate the result.
func AllDetections(stack string, opts Options) ([]FaultDetection, error) {
	var detections []FaultDetection
	for _, bug := range bugdb.LiveFaults(stack) {
		det, err := RunFaultCampaign(stack, bug.Fault, opts)
		if err != nil {
			return nil, fmt.Errorf("fault %s: %w", bug.Fault, err)
		}
		det.CatalogTool = bug.Tool
		detections = append(detections, det)
	}
	return detections, nil
}

// Table1Live runs the fault campaigns for every live-injectable bug of a
// stack and aggregates detections by component and tool.
func Table1Live(stack string, opts Options) ([]bugdb.Table1Row, []FaultDetection, error) {
	detections, err := AllDetections(stack, opts)
	if err != nil {
		return nil, nil, err
	}
	return AggregateTable1(detections), detections, nil
}

// AggregateTable1 folds detections into Table 1 rows.
func AggregateTable1(detections []FaultDetection) []bugdb.Table1Row {
	byComponent := map[string]*bugdb.Table1Row{}
	var order []string
	for _, det := range detections {
		row, ok := byComponent[det.Component]
		if !ok {
			row = &bugdb.Table1Row{Component: det.Component}
			byComponent[det.Component] = row
			order = append(order, det.Component)
		}
		if len(det.DetectedBy) > 0 {
			row.Bugs++
			// Attribute to the catalog's tool when both found it, else to
			// the tool that did.
			tool := det.CatalogTool
			if len(det.DetectedBy) == 1 {
				tool = det.DetectedBy[0]
			}
			if tool == "p4-fuzzer" {
				row.Fuzzer++
			} else {
				row.Symbolic++
			}
		}
	}
	var rows []bugdb.Table1Row
	for _, c := range order {
		rows = append(rows, *byComponent[c])
	}
	return rows
}

// Table2Live runs the trivial suite for every live fault and aggregates by
// first failing test.
func Table2Live(stack string, opts Options) (map[string]int, int, error) {
	detections, err := AllDetections(stack, opts)
	if err != nil {
		return nil, 0, err
	}
	counts, total := AggregateTable2(detections)
	return counts, total, nil
}

// AggregateTable2 folds detections into trivial-suite counts.
func AggregateTable2(detections []FaultDetection) (map[string]int, int) {
	counts := map[string]int{}
	for _, det := range detections {
		counts[det.TrivialTest]++
	}
	return counts, len(detections)
}

// Table3Row is one measurement row of Table 3.
type Table3Row struct {
	Model        string
	Entries      int
	Generation   time.Duration // cold SMT generation ("Generation")
	WithCache    time.Duration // warm-cache lookup ("(w/c)")
	Testing      time.Duration // differential execution ("Testing")
	Goals        int
	Covered      int
	FuzzEntries  int
	FuzzElapsed  time.Duration
	FuzzPerSec   float64
	FuzzRequests int
}

// Table3 measures p4-symbolic generation (cold and cached) and testing
// time plus p4-fuzzer throughput for one model at the paper's scale.
func Table3(role string, entries, fuzzRequests, fuzzUpdates int, seed int64) (Table3Row, error) {
	prog := models.MustLoad(role)
	info := p4info.New(prog)
	ents := workload.MustEntries(prog, entries, seed)
	row := Table3Row{Model: role, Entries: len(ents), FuzzRequests: fuzzRequests}

	cache := symbolic.NewCache()

	// Cold generation + differential testing.
	sw := switchsim.New(role)
	h := switchv.New(info, sw, sw)
	if err := h.PushPipeline(); err != nil {
		return row, err
	}
	rep, err := h.RunDataPlane(ents, switchv.DataPlaneOptions{Cache: cache})
	if err != nil {
		return row, err
	}
	sw.Close()
	row.Generation = rep.GenElapsed
	row.Testing = rep.TestElapsed
	row.Goals = rep.Goals
	row.Covered = rep.Covered

	// Warm cache on a fresh switch.
	sw2 := switchsim.New(role)
	h2 := switchv.New(info, sw2, sw2)
	if err := h2.PushPipeline(); err != nil {
		return row, err
	}
	rep2, err := h2.RunDataPlane(ents, switchv.DataPlaneOptions{Cache: cache})
	if err != nil {
		return row, err
	}
	sw2.Close()
	if !rep2.CacheHit {
		return row, fmt.Errorf("second run missed the cache")
	}
	row.WithCache = rep2.GenElapsed

	// Fuzzer throughput.
	sw3 := switchsim.New(role)
	h3 := switchv.New(info, sw3, sw3)
	if err := h3.PushPipeline(); err != nil {
		return row, err
	}
	frep, err := h3.RunControlPlane(fuzzer.Options{
		Seed:              seed,
		NumRequests:       fuzzRequests,
		UpdatesPerRequest: fuzzUpdates,
	})
	if err != nil {
		return row, err
	}
	sw3.Close()
	if len(frep.Incidents) > 0 {
		return row, fmt.Errorf("clean switch produced %d incidents", len(frep.Incidents))
	}
	row.FuzzEntries = frep.Updates
	row.FuzzElapsed = frep.Elapsed
	row.FuzzPerSec = frep.EntriesPerSecond()
	return row, nil
}

// RenderTable3 prints the rows like the paper's Table 3.
func RenderTable3(rows []Table3Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %8s %18s %10s\n", "P4 Prog.", "Entries", "Generation (w/c)", "Testing")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %8d %10s (%s) %10s\n", r.Model, r.Entries,
			r.Generation.Round(time.Millisecond), r.WithCache.Round(time.Microsecond),
			r.Testing.Round(time.Millisecond))
	}
	fmt.Fprintf(&b, "\n%-12s %16s %10s\n", "P4 Prog.", "Fuzzed Entries", "Entries/s")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %16d %10.0f\n", r.Model, r.FuzzEntries, r.FuzzPerSec)
	}
	return b.String()
}

// RenderDetections summarizes the live fault campaigns.
func RenderDetections(dets []FaultDetection) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-38s %-22s %-26s %s\n", "Fault", "Component", "Detected by", "Trivial test")
	sort.Slice(dets, func(i, j int) bool { return dets[i].Fault < dets[j].Fault })
	for _, d := range dets {
		by := strings.Join(d.DetectedBy, ", ")
		if by == "" {
			by = "NOT DETECTED"
		}
		tt := d.TrivialTest
		if tt == "" {
			tt = "-"
		}
		fmt.Fprintf(&b, "%-38s %-22s %-26s %s\n", d.Fault, d.Component, by, tt)
	}
	return b.String()
}

// Entries re-exports the workload generator for the replay command.
func Entries(role string, n int, seed int64) []*pdpi.Entry {
	return workload.MustEntries(models.MustLoad(role), n, seed)
}
