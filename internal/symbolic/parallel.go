// Parallel, solve-avoiding test-packet generation: the data-plane
// mirror of the control plane's sharded campaign engine.
//
// The sequential baseline (Executor.GeneratePackets) pays one SMT check
// per coverage goal per campaign. Three mechanisms cut that down:
//
//   - model-reuse pruning: after each SAT model, the remaining goal
//     conditions are evaluated concretely under the model (smt.Eval
//     over the hash-consed term DAG); conditions the model already
//     satisfies are covered by the same packet, skipping their solver
//     calls. This is greedy deterministic test-suite reduction — one
//     packet's path through the pipeline typically covers one goal per
//     table it traverses;
//   - parallel goal shards: the goal list is partitioned across
//     independent Executors (Builder and Solver are single-threaded by
//     design) driven by a worker pool. Solving proceeds in rounds: each
//     round, every shard with undecided goals solves its next one;
//     at the round barrier the obtained models' coverage claims are
//     merged in shard order against the whole goal universe, so pruning
//     stays global — a shard's model retires goals owned by any shard;
//   - per-goal caching: each goal's outcome is keyed by the entries
//     that can reach it, so entry churn re-solves only affected goals
//     (see Cache).
//
// Determinism contract (as for RunParallelCampaign): the packet set and
// report are a pure function of (program, entries, options, shard
// count, cache state). The worker count only changes wall-clock time.
// This holds because the shard partition is a fixed slice of the
// canonical goal order, each shard's solver is private and
// deterministic, every round's task set is a pure function of the
// decided-goal state at the round barrier, and claims merge in shard
// order no matter which worker finished first.
package symbolic

import (
	"fmt"
	"sync"

	"switchv/internal/p4/ir"
	"switchv/internal/p4/pdpi"
	"switchv/internal/smt"
)

const (
	// DefaultGoalShards is the logical shard count for goal solving.
	// Results depend on it (it fixes the round schedule), so it is
	// deliberately decoupled from the worker count. Each shard pays for
	// one symbolic execution of the model, so the default stays small;
	// raise GenOptions.Shards to feed more workers on big campaigns.
	DefaultGoalShards = 4
	// minGoalsPerShard caps the shard count on small campaigns so a
	// handful of goals does not pay for eight symbolic executions.
	minGoalsPerShard = 16
)

// GenOptions configures the parallel generator.
type GenOptions struct {
	// Mode selects the structural coverage goals.
	Mode CoverageMode
	// Enriched adds the standing "test engineer" goals (EnrichedGoals)
	// to the universe.
	Enriched bool
	// Workers is the number of concurrent shard executors (default 1).
	// More workers than shards is clamped to the shard count.
	Workers int
	// Shards is the logical goal-shard count (default
	// DefaultGoalShards, capped by minGoalsPerShard). The result
	// depends on it; the worker count must not.
	Shards int
	// Cache, when non-nil, serves per-goal outcomes and absorbs the
	// run's results.
	Cache *Cache
	// UnreachableTables is the static preflight's proof set
	// (check.Report.UnreachableSet): table goals on these tables are
	// decided unreachable before sharding, spending no solver check.
	// Only "table:*" goals are dropped — branch goals are left to the
	// solver, since the analyzer's branch numbering does not align with
	// the executor's per-entry expansion.
	UnreachableTables map[string]bool
	// DisableWitness turns off the solver-free witness pre-pass (see
	// witness.go), forcing every goal through the solver path. Verdicts
	// are identical either way; the flag exists for ablation and
	// differential testing.
	DisableWitness bool
	// DisableSlicing turns off cone-of-influence slice restriction on
	// per-goal checks (smt.CheckSliced), forcing full-formula checks.
	// Verdicts are identical either way (slicing is sound by closure +
	// background completion); synthesized packets and pruning cascades
	// may differ, so only verdicts are comparable across this flag.
	DisableSlicing bool
}

// Generator runs parallel, solve-avoiding packet generation. Build one
// with NewGenerator, inspect GoalKeys, then Run.
type Generator struct {
	prog  *ir.Program
	store *pdpi.Store
	opts  Options
	gopts GenOptions

	ex0   *Executor
	goals []Goal // the universe, in canonical order
}

// NewGenerator symbolically executes the model once (the shard-0
// executor) and enumerates the goal universe: the mode's structural
// goals followed by the enriched goals when requested.
func NewGenerator(prog *ir.Program, store *pdpi.Store, opts Options, gopts GenOptions) (*Generator, error) {
	ex0, err := newExecutor(prog, store, opts, true)
	if err != nil {
		return nil, err
	}
	goals := ex0.Goals(gopts.Mode)
	if gopts.Enriched {
		goals = append(goals, ex0.EnrichedGoals()...)
	}
	return &Generator{prog: prog, store: store, opts: opts, gopts: gopts, ex0: ex0, goals: goals}, nil
}

// GoalKeys lists the goal universe in canonical order (the campaign's
// coverage denominator).
func (g *Generator) GoalKeys() []string {
	keys := make([]string, len(g.goals))
	for i, goal := range g.goals {
		keys[i] = goal.Key
	}
	return keys
}

// goalOutcome is one decided goal: a packet or unreachability.
type goalOutcome struct {
	pkt *TestPacket // nil = unreachable
	how int         // how the goal was decided
}

const (
	bySolve = iota
	byPrune
	byCache
	byPrecheck
	byWitness
	byWitnessUnsat
)

// shardState is one logical shard's solving context, owned by at most
// one worker at a time (handed over only across round barriers).
type shardState struct {
	ex     *Executor
	conds  []*smt.Term // universe conditions in this executor's own DAG
	queue  []int       // goal indices this shard owns, in canonical order
	pos    int
	checks int  // NumChecks at construction
	sliced bool // use the slice-restricted solver path
}

// roundResult is one shard's contribution to a round: the verdict on
// its own goal plus the universe goals its model also satisfies.
type roundResult struct {
	shard int
	goal  int
	err   error
	sat   bool
	pkt   *TestPacket
	hits  []int // undecided-at-round-start goal indices the model satisfies
}

// Run generates packets for every reachable goal. Packets are returned
// in canonical goal order, one per covered goal (pruned goals share
// another goal's packet bytes under their own key).
func (g *Generator) Run() ([]TestPacket, Report, error) {
	rep := Report{Goals: len(g.goals)}
	outcomes := make([]goalOutcome, len(g.goals))
	decided := make([]bool, len(g.goals))

	// Preflight-proved goals first: a table the static analyzer proved
	// unreachable can never satisfy an entry or default goal, whatever
	// the entry set — decide them without a solver check (and before
	// the cache probe, so a fully-pruned campaign skips fingerprinting
	// them too).
	if len(g.gopts.UnreachableTables) > 0 {
		for i, goal := range g.goals {
			if t := goalTable(goal.Key); t != "" && g.gopts.UnreachableTables[t] {
				outcomes[i] = goalOutcome{how: byPrecheck}
				decided[i] = true
			}
		}
	}

	// Per-goal cache probe (precheck-decided goals never touch the
	// cache in either direction: their verdict is free to recompute).
	var fps []string
	if g.gopts.Cache != nil {
		fps = make([]string, len(g.goals))
		for i, goal := range g.goals {
			if decided[i] {
				continue
			}
			fps[i] = GoalFingerprint(g.prog, g.opts, goal.Key, g.ex0.DepEntries(goal.Key))
			if pkt, ok := g.gopts.Cache.GetGoal(fps[i]); ok {
				outcomes[i] = goalOutcome{pkt: pkt, how: byCache}
				decided[i] = true
			}
		}
	}
	// Solver-free witness pre-pass, sequential on the shard-0 executor:
	// worker- and engine-independent by construction, so the determinism
	// contract is untouched. Checks it spends (fallback solves) happen
	// before the shard snapshots below, so they are accounted separately.
	prepassChecks := 0
	if !g.gopts.DisableWitness {
		startChecks := g.ex0.solver.NumChecks
		if err := g.witnessPrepass(decided, outcomes); err != nil {
			return nil, rep, err
		}
		prepassChecks = g.ex0.solver.NumChecks - startChecks
	}

	var missing []int
	for i := range g.goals {
		if !decided[i] {
			missing = append(missing, i)
		}
	}

	// Shard the undecided goals contiguously in canonical order.
	shards := g.gopts.Shards
	if shards <= 0 {
		shards = DefaultGoalShards
	}
	if max := (len(missing) + minGoalsPerShard - 1) / minGoalsPerShard; shards > max {
		shards = max
	}
	rep.Shards = shards
	workers := g.gopts.Workers
	if workers <= 0 {
		workers = 1
	}
	if workers > shards && shards > 0 {
		workers = shards
	}

	states := make([]*shardState, shards)
	if shards > 0 {
		// Build the shard executors concurrently (shard 0 reuses the
		// generator's); each resolves the universe's conditions into its
		// own term DAG once.
		errs := make([]error, shards)
		var wg sync.WaitGroup
		sem := make(chan struct{}, workers)
		for s := 0; s < shards; s++ {
			wg.Add(1)
			sem <- struct{}{}
			go func(s int) {
				defer func() { <-sem; wg.Done() }()
				ex := g.ex0
				if s != 0 {
					var err error
					if ex, err = newExecutor(g.prog, g.store, g.opts, true); err != nil {
						errs[s] = fmt.Errorf("symbolic: shard %d executor: %w", s, err)
						return
					}
				}
				lo := s * len(missing) / shards
				hi := (s + 1) * len(missing) / shards
				states[s] = &shardState{
					ex:     ex,
					conds:  condsFor(ex, g.goals),
					queue:  missing[lo:hi],
					checks: ex.solver.NumChecks,
					sliced: !g.gopts.DisableSlicing,
				}
			}(s)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return nil, rep, err
			}
		}
	}

	// Solve in rounds: every shard with an undecided goal checks its
	// next one concurrently; the barrier merges verdicts and model
	// coverage claims in shard order.
	sem := make(chan struct{}, workers)
	for {
		// Round-start snapshot of the undecided universe, shared
		// read-only by every task this round.
		var undecided []int
		for i := range g.goals {
			if !decided[i] {
				undecided = append(undecided, i)
			}
		}
		results := make([]*roundResult, shards)
		var wg sync.WaitGroup
		tasks := 0
		for s, st := range states {
			for st.pos < len(st.queue) && decided[st.queue[st.pos]] {
				st.pos++
			}
			if st.pos >= len(st.queue) {
				continue
			}
			goal := st.queue[st.pos]
			st.pos++
			tasks++
			wg.Add(1)
			sem <- struct{}{}
			go func(s int, st *shardState, goal int) {
				defer func() { <-sem; wg.Done() }()
				results[s] = solveRound(st, goal, g.goals, undecided)
			}(s, st, goal)
		}
		if tasks == 0 {
			break
		}
		wg.Wait()
		for _, r := range results {
			if r == nil {
				continue
			}
			if r.err != nil {
				return nil, rep, r.err
			}
			// The shard's own goal first (a lower shard's model may have
			// claimed it already this round — its check is spent either
			// way, the lower shard's packet wins deterministically).
			if !decided[r.goal] {
				decided[r.goal] = true
				if r.sat {
					outcomes[r.goal] = goalOutcome{pkt: r.pkt, how: bySolve}
				} else {
					outcomes[r.goal] = goalOutcome{how: bySolve}
				}
			}
			for _, j := range r.hits {
				if decided[j] {
					continue
				}
				decided[j] = true
				outcomes[j] = goalOutcome{
					pkt: &TestPacket{GoalKey: g.goals[j].Key, Port: r.pkt.Port, Data: r.pkt.Data},
					how: byPrune,
				}
			}
		}
	}

	rep.SMTChecks += prepassChecks
	for _, st := range states {
		rep.SMTChecks += st.ex.solver.NumChecks - st.checks
		rep.SATStats.Add(st.ex.solver.Stats())
		rep.Terms += st.ex.b.NumTerms()
		rep.Clauses += st.ex.solver.NumClauses
		rep.Vars += st.ex.solver.NumVars()
		rep.CNFReuse += st.ex.solver.CNFReuse
		rep.SlicedAsserts += st.ex.solver.SlicedAsserts
		rep.SlicedBits += st.ex.solver.SlicedBits
	}
	if shards == 0 {
		// Everything was decided before sharding (cache plus witness
		// pre-pass): only the shard-0 executor was built.
		rep.Terms = g.ex0.b.NumTerms()
		rep.Clauses = g.ex0.solver.NumClauses
		rep.Vars = g.ex0.solver.NumVars()
		rep.CNFReuse = g.ex0.solver.CNFReuse
		rep.SlicedAsserts = g.ex0.solver.SlicedAsserts
		rep.SlicedBits = g.ex0.solver.SlicedBits
		rep.SATStats.Add(g.ex0.solver.Stats())
	}

	var packets []TestPacket
	for i := range g.goals {
		out := outcomes[i]
		switch out.how {
		case bySolve:
			rep.Solved++
		case byPrune:
			rep.Pruned++
		case byCache:
			rep.Cached++
		case byPrecheck:
			rep.Precheck++
		case byWitness:
			rep.Witnessed++
		case byWitnessUnsat:
			rep.WitnessUnsat++
		}
		if out.pkt != nil {
			rep.Covered++
			packets = append(packets, *out.pkt)
		} else {
			rep.Unreachable++
		}
		if g.gopts.Cache != nil && out.how != byCache && out.how != byPrecheck {
			g.gopts.Cache.PutGoal(fps[i], out.pkt)
		}
	}
	return packets, rep, nil
}

// solveRound checks one goal on the shard's private solver and, on SAT,
// extracts the packet and evaluates the model against every goal
// undecided at the round start — the global pruning claims merged at
// the barrier.
func solveRound(st *shardState, goal int, universe []Goal, undecided []int) *roundResult {
	r := &roundResult{shard: -1, goal: goal}
	solve := st.ex.SolveGoal
	if st.sliced {
		solve = st.ex.SolveGoalSliced
	}
	pkt, ok, err := solve(Goal{Key: universe[goal].Key, Cond: st.conds[goal]})
	if err != nil {
		r.err = err
		return r
	}
	if !ok {
		return r
	}
	r.sat, r.pkt = true, pkt
	model := st.ex.solver.Model()
	for _, j := range undecided {
		if j != goal && smt.EvalBool(model, st.conds[j]) {
			r.hits = append(r.hits, j)
		}
	}
	return r
}

// condsFor rebinds the goal universe's conditions to an executor's own
// term DAG (every executor over the same program and store enumerates
// identical keys; an unknown key is unreachable by construction).
func condsFor(ex *Executor, goals []Goal) []*smt.Term {
	enriched := map[string]*smt.Term{}
	for _, g := range ex.EnrichedGoals() {
		enriched[g.Key] = g.Cond
	}
	conds := make([]*smt.Term, len(goals))
	for i, g := range goals {
		switch {
		case ex.trace[g.Key] != nil:
			conds[i] = ex.trace[g.Key]
		case enriched[g.Key] != nil:
			conds[i] = enriched[g.Key]
		default:
			conds[i] = ex.b.False()
		}
	}
	return conds
}

// GeneratePacketsParallel is the one-shot convenience wrapper around
// NewGenerator + Run.
func GeneratePacketsParallel(prog *ir.Program, store *pdpi.Store, opts Options, gopts GenOptions) ([]TestPacket, Report, error) {
	gen, err := NewGenerator(prog, store, opts, gopts)
	if err != nil {
		return nil, Report{}, err
	}
	return gen.Run()
}
