package symbolic

import (
	"testing"

	"switchv/internal/p4/check"
	"switchv/internal/p4/ir"
	"switchv/internal/p4/parser"
	"switchv/internal/p4/pdpi"
	"switchv/internal/p4/value"
)

// deadLPMModel is an LPM-heavy model with one table the static
// preflight proves unreachable: dead_lpm sits behind a
// constant-false guard, and its apply comes last so its goals land at
// the end of the canonical goal order.
const deadLPMModel = `
const bit<8> GEN = 1;

header ethernet_t { bit<48> dst_addr; bit<48> src_addr; bit<16> ether_type; }
header ipv4_t { bit<8> ttl; bit<8> protocol; bit<32> dst_addr; }
struct headers_t { ethernet_t ethernet; ipv4_t ipv4; }
struct meta_t { bit<8> mode; }

control ingress(inout headers_t headers, inout meta_t meta,
                inout standard_metadata_t standard_metadata) {
  action drop() { mark_to_drop(); }
  action fwd(bit<16> port) { set_egress_port(port); }

  table live_lpm {
    key = { headers.ipv4.dst_addr : lpm @name("ipv4_dst"); }
    actions = { drop; fwd; }
    const default_action = drop;
  }
  table dead_lpm {
    key = { headers.ipv4.dst_addr : lpm @name("ipv4_dst"); }
    actions = { drop; fwd; }
    const default_action = drop;
  }

  apply {
    if (headers.ipv4.isValid()) {
      live_lpm.apply();
    }
    if (GEN == 2) {
      dead_lpm.apply();
    }
  }
}
`

func deadLPMFixture(t *testing.T) (*ir.Program, *pdpi.Store) {
	t.Helper()
	ast, err := parser.Parse(deadLPMModel)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := ir.Compile(ast)
	if err != nil {
		t.Fatal(err)
	}
	store := pdpi.NewStore()
	for _, name := range []string{"live_lpm", "dead_lpm"} {
		tbl, _ := prog.TableByName(name)
		fwd, _ := prog.ActionByName("fwd")
		for i, pfx := range []struct {
			v    uint64
			plen int
		}{{0x0a000000, 8}, {0x0a630000, 16}, {0x0a630100, 24}} {
			err := store.Insert(&pdpi.Entry{
				Table:   tbl,
				Matches: []pdpi.Match{{Key: "ipv4_dst", Kind: ir.MatchLPM, Value: value.New(pfx.v, 32), PrefixLen: pfx.plen}},
				Action:  &pdpi.ActionInvocation{Action: fwd, Args: []value.V{value.New(uint64(11 + i), 16)}},
			})
			if err != nil {
				t.Fatal(err)
			}
		}
	}
	return prog, store
}

// TestPrecheckGoalPruning is the acceptance experiment: on a model with
// an unreachable table, feeding the preflight's proof set into the
// generator skips every goal on that table — fewer solver checks, and
// bit-identical packets for all reachable goals (the skipped goals come
// last in canonical order, so the solver's state at every reachable
// goal's check is unchanged).
func TestPrecheckGoalPruning(t *testing.T) {
	prog, store := deadLPMFixture(t)

	rep := check.Check(prog)
	if rep.HasErrors() {
		t.Fatalf("fixture has error findings:\n%s", rep.Text())
	}
	dead := rep.UnreachableSet()
	if !dead["dead_lpm"] || dead["live_lpm"] {
		t.Fatalf("unreachable set = %v", dead)
	}

	base := GenOptions{Mode: CoverEntries, Shards: 1, Workers: 1}
	basePkts, baseRep, err := GeneratePacketsParallel(prog, store, Options{}, base)
	if err != nil {
		t.Fatal(err)
	}
	pruned := base
	pruned.UnreachableTables = dead
	prunedPkts, prunedRep, err := GeneratePacketsParallel(prog, store, Options{}, pruned)
	if err != nil {
		t.Fatal(err)
	}

	// dead_lpm contributes 3 entry goals + 1 default goal, each an
	// unavoidable UNSAT check for the baseline (no SAT model can claim
	// an unsatisfiable goal).
	const deadGoals = 4
	if prunedRep.Precheck != deadGoals {
		t.Errorf("Precheck = %d, want %d", prunedRep.Precheck, deadGoals)
	}
	if baseRep.Precheck != 0 {
		t.Errorf("baseline Precheck = %d, want 0", baseRep.Precheck)
	}
	if got := baseRep.SMTChecks - prunedRep.SMTChecks; got != deadGoals {
		t.Errorf("solver-check reduction = %d (%d -> %d), want %d",
			got, baseRep.SMTChecks, prunedRep.SMTChecks, deadGoals)
	}
	// Same universe, same verdicts: the baseline also finds the dead
	// goals unreachable, just the expensive way.
	if prunedRep.Goals != baseRep.Goals || prunedRep.Unreachable != baseRep.Unreachable ||
		prunedRep.Covered != baseRep.Covered {
		t.Errorf("verdicts differ: pruned %+v vs baseline %+v", prunedRep, baseRep)
	}

	// Bit-identical packets for every reachable goal.
	if renderPackets(prunedPkts) != renderPackets(basePkts) {
		t.Errorf("packets differ:\npruned:\n%sbaseline:\n%s",
			renderPackets(prunedPkts), renderPackets(basePkts))
	}
	for _, p := range prunedPkts {
		if GoalTable(p.GoalKey) == "dead_lpm" {
			t.Errorf("packet generated for dead-table goal %s", p.GoalKey)
		}
	}
}

// TestPrecheckWithCache: precheck-decided goals bypass the cache in
// both directions — nothing stored for them, and a warm cache still
// reports them as precheck-decided, not cached.
func TestPrecheckWithCache(t *testing.T) {
	prog, store := deadLPMFixture(t)
	dead := check.Check(prog).UnreachableSet()

	cache := NewCache()
	opts := GenOptions{Mode: CoverEntries, Shards: 1, Workers: 1, Cache: cache, UnreachableTables: dead}
	_, cold, err := GeneratePacketsParallel(prog, store, Options{}, opts)
	if err != nil {
		t.Fatal(err)
	}
	_, warm, err := GeneratePacketsParallel(prog, store, Options{}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Precheck != 4 || warm.Precheck != 4 {
		t.Errorf("Precheck cold=%d warm=%d, want 4", cold.Precheck, warm.Precheck)
	}
	if warm.SMTChecks != 0 {
		t.Errorf("warm run spent %d checks, want 0", warm.SMTChecks)
	}
	if warm.Cached != cold.Goals-4 {
		t.Errorf("warm Cached = %d, want %d", warm.Cached, cold.Goals-4)
	}
}
