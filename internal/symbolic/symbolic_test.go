package symbolic

import (
	"fmt"
	"strings"
	"testing"

	"switchv/internal/bmv2"
	"switchv/internal/p4/ir"
	"switchv/internal/p4/pdpi"
	"switchv/internal/p4/value"
	"switchv/internal/testutil"
	"switchv/models"
)

func v(x uint64, w int) value.V { return value.New(x, w) }

func fixtureExecutor(t *testing.T) (*Executor, *pdpi.Store) {
	t.Helper()
	prog := models.Middleblock()
	store := pdpi.NewStore()
	testutil.RoutingFixture(prog, store)
	ex, err := New(prog, store, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return ex, store
}

func TestGoalsEnumerateEntriesAndDefaults(t *testing.T) {
	ex, store := fixtureExecutor(t)
	goals := ex.Goals(CoverEntries)
	// One goal per installed entry plus one default per applied table.
	wantEntries := store.Len()
	gotEntries, gotDefaults := 0, 0
	for _, g := range goals {
		if strings.Contains(g.Key, ":entry:") {
			gotEntries++
		}
		if strings.HasSuffix(g.Key, ":default") {
			gotDefaults++
		}
	}
	if gotEntries != wantEntries {
		t.Errorf("entry goals = %d, want %d", gotEntries, wantEntries)
	}
	// middleblock applies 12 tables.
	if gotDefaults != 12 {
		t.Errorf("default goals = %d, want 12", gotDefaults)
	}
	branchGoals := ex.Goals(CoverBranches)
	if len(branchGoals) <= len(goals) {
		t.Errorf("branch mode added no goals: %d vs %d", len(branchGoals), len(goals))
	}
}

// TestPacketsSatisfyGoals is the core soundness property (§5): a packet
// synthesized for goal g, when run through the reference simulator, must
// actually execute g's construct.
func TestPacketsSatisfyGoals(t *testing.T) {
	ex, store := fixtureExecutor(t)
	sim, err := bmv2.New(models.Middleblock(), store)
	if err != nil {
		t.Fatal(err)
	}
	pkts, rep, err := ex.GeneratePackets(CoverEntries)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Covered == 0 {
		t.Fatal("no goals covered")
	}
	if rep.Covered+rep.Unreachable != rep.Goals {
		t.Errorf("report inconsistent: %+v", rep)
	}
	t.Logf("report: %+v", rep)
	for _, pkt := range pkts {
		out, err := sim.Run(bmv2.Input{Port: pkt.Port, Packet: pkt.Data})
		if err != nil {
			t.Errorf("goal %s: simulator rejected packet: %v", pkt.GoalKey, err)
			continue
		}
		if !hitsGoal(out, pkt.GoalKey) {
			t.Errorf("goal %s not hit; trace: %+v", pkt.GoalKey, out.Trace)
		}
	}
}

// hitsGoal checks a bmv2 trace against a goal key of the form
// "table:<t>:entry:<key>" or "table:<t>:default".
func hitsGoal(out *bmv2.Outcome, key string) bool {
	parts := strings.SplitN(key, ":", 4)
	if len(parts) < 3 || parts[0] != "table" {
		return true // branch goals are not directly observable in the trace
	}
	table := parts[1]
	for _, h := range out.Trace {
		if h.Table != table {
			continue
		}
		if parts[2] == "default" && h.EntryKey == "" {
			return true
		}
		if parts[2] == "entry" && h.EntryKey == parts[3] {
			return true
		}
	}
	return false
}

func TestEntryGoalCoverageIsHigh(t *testing.T) {
	ex, _ := fixtureExecutor(t)
	// Every installed *entry* in this fixture is reachable. Some *default*
	// actions are legitimately unreachable: e.g. nexthop_table only
	// applies when nexthop_id was set to an installed nexthop, so its
	// default can never fire — exactly the kind of fact p4-symbolic
	// surfaces.
	for _, g := range ex.Goals(CoverEntries) {
		_, ok, err := ex.SolveGoal(g)
		if err != nil {
			t.Fatal(err)
		}
		if strings.Contains(g.Key, ":entry:") && !ok {
			t.Errorf("entry goal unreachable: %s", g.Key)
		}
	}
	for _, key := range []string{
		TraceKeyDefault("nexthop_table"),
		TraceKeyDefault("neighbor_table"),
		TraceKeyDefault("router_interface_table"),
		TraceKeyDefault("wcmp_group_table"),
	} {
		if _, ok, err := ex.SolveGoal(Goal{Key: key, Cond: ex.Trace(key)}); err != nil || ok {
			t.Errorf("default %s should be unreachable in this fixture (ok=%v err=%v)", key, ok, err)
		}
	}
}

func TestUnreachableEntryDetected(t *testing.T) {
	prog := models.Middleblock()
	store := pdpi.NewStore()
	testutil.RoutingFixture(prog, store)
	// An ipv4 route in VRF 7, which nothing assigns: unreachable.
	ipv4, _ := prog.TableByName("ipv4_table")
	setNexthop, _ := prog.ActionByName("set_nexthop_id")
	dead := &pdpi.Entry{
		Table: ipv4,
		Matches: []pdpi.Match{
			{Key: "vrf_id", Kind: ir.MatchExact, Value: v(7, 10)},
			{Key: "ipv4_dst", Kind: ir.MatchLPM, Value: v(0x0a000000, 32), PrefixLen: 8},
		},
		Action: &pdpi.ActionInvocation{Action: setNexthop, Args: []value.V{v(1, 10)}},
	}
	if err := dead.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := store.Insert(dead); err != nil {
		t.Fatal(err)
	}
	ex, err := New(prog, store, Options{})
	if err != nil {
		t.Fatal(err)
	}
	pkt, ok, err := ex.SolveGoal(Goal{Key: TraceKeyEntry("ipv4_table", dead), Cond: ex.Trace(TraceKeyEntry("ipv4_table", dead))})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Errorf("unreachable entry produced packet %x", pkt.Data)
	}
}

func TestPuntGoal(t *testing.T) {
	ex, store := fixtureExecutor(t)
	// Custom goal over Y: synthesize a punted packet.
	pkt, ok, err := ex.SolveGoal(Goal{Key: "custom:punt", Cond: ex.PuntCond()})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("no punted packet exists?")
	}
	sim, err := bmv2.New(models.Middleblock(), store)
	if err != nil {
		t.Fatal(err)
	}
	out, err := sim.Run(bmv2.Input{Port: pkt.Port, Packet: pkt.Data})
	if err != nil {
		t.Fatal(err)
	}
	if out.Disposition != bmv2.Punted {
		t.Errorf("disposition = %v, want punted (packet %x)", out.Disposition, pkt.Data)
	}
}

func TestForwardGoal(t *testing.T) {
	ex, store := fixtureExecutor(t)
	pkt, ok, err := ex.SolveGoal(Goal{Key: "custom:forward", Cond: ex.ForwardCond()})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("no forwarded packet exists?")
	}
	sim, err := bmv2.New(models.Middleblock(), store)
	if err != nil {
		t.Fatal(err)
	}
	out, err := sim.Run(bmv2.Input{Port: pkt.Port, Packet: pkt.Data})
	if err != nil {
		t.Fatal(err)
	}
	if out.Disposition != bmv2.Forwarded {
		t.Errorf("disposition = %v, want forwarded", out.Disposition)
	}
}

func TestEmptyStoreStillSolves(t *testing.T) {
	prog := models.Middleblock()
	store := pdpi.NewStore()
	ex, err := New(prog, store, Options{})
	if err != nil {
		t.Fatal(err)
	}
	goals := ex.Goals(CoverEntries)
	// Only defaults exist.
	for _, g := range goals {
		if strings.Contains(g.Key, ":entry:") {
			t.Fatalf("entry goal with empty store: %s", g.Key)
		}
	}
	// Dropping is certainly possible on the empty configuration.
	if _, ok, err := ex.SolveGoal(Goal{Key: "drop", Cond: ex.DropCond()}); err != nil || !ok {
		t.Errorf("drop goal: ok=%v err=%v", ok, err)
	}
}

func TestCache(t *testing.T) {
	prog := models.Middleblock()
	store := pdpi.NewStore()
	testutil.RoutingFixture(prog, store)
	ex, err := New(prog, store, Options{})
	if err != nil {
		t.Fatal(err)
	}
	goal := ex.Goals(CoverEntries)[0]
	fp := GoalFingerprint(prog, Options{}, goal.Key, ex.DepEntries(goal.Key))
	cache := NewCache()
	if _, ok := cache.GetGoal(fp); ok {
		t.Fatal("empty cache hit")
	}
	pkt, ok, err := ex.SolveGoal(goal)
	if err != nil || !ok {
		t.Fatalf("solving %s: ok=%v err=%v", goal.Key, ok, err)
	}
	cache.PutGoal(fp, pkt)
	got, ok := cache.GetGoal(fp)
	if !ok || got == nil || got.GoalKey != pkt.GoalKey {
		t.Fatalf("cache miss after put: ok=%v got=%v", ok, got)
	}
	if cache.Hits() != 1 || cache.Misses() != 1 {
		t.Errorf("hits=%d misses=%d", cache.Hits(), cache.Misses())
	}
	// An unreachability verdict (nil packet) is cacheable and distinct
	// from a miss.
	cache.PutGoal("unreachable-goal", nil)
	if got, ok := cache.GetGoal("unreachable-goal"); !ok || got != nil {
		t.Errorf("unreachable verdict: ok=%v got=%v", ok, got)
	}
	// Fingerprints are stable for an identical store...
	store2 := pdpi.NewStore()
	testutil.RoutingFixture(prog, store2)
	ex2, err := New(prog, store2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if GoalFingerprint(prog, Options{}, goal.Key, ex2.DepEntries(goal.Key)) != fp {
		t.Error("fingerprint not stable for identical entries")
	}
	// ...distinct per goal...
	other := ex.Goals(CoverEntries)[1]
	if GoalFingerprint(prog, Options{}, other.Key, ex.DepEntries(other.Key)) == fp {
		t.Error("fingerprint identical across distinct goals")
	}
	// ...sensitive to the goal's dependency entries...
	vrf, _ := prog.TableByName("vrf_table")
	extra := &pdpi.Entry{
		Table:   vrf,
		Matches: []pdpi.Match{{Key: "vrf_id", Kind: ir.MatchExact, Value: v(9, 10)}},
		Action:  &pdpi.ActionInvocation{Action: prog.NoAction},
	}
	if err := store2.Insert(extra); err != nil {
		t.Fatal(err)
	}
	ex3, err := New(prog, store2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	vrfGoal := ""
	for _, g := range ex.Goals(CoverEntries) {
		if strings.HasPrefix(g.Key, "table:vrf_table:") {
			vrfGoal = g.Key
			break
		}
	}
	if vrfGoal == "" {
		t.Fatal("no vrf_table goal")
	}
	// ex reads store (without the extra entry), ex3 reads store2 (with
	// it): the vrf goal's dependency set differs, so must its key.
	if GoalFingerprint(prog, Options{}, vrfGoal, ex.DepEntries(vrfGoal)) ==
		GoalFingerprint(prog, Options{}, vrfGoal, ex3.DepEntries(vrfGoal)) {
		t.Error("fingerprint unchanged after dependency entry change")
	}
	// ...and sensitive to the executor options.
	if GoalFingerprint(prog, Options{MaxPort: 8}, goal.Key, ex.DepEntries(goal.Key)) == fp {
		t.Error("fingerprint unchanged across options")
	}
}

func TestCacheLRUEviction(t *testing.T) {
	cache := NewCacheCap(4)
	if cache.Cap() != 4 {
		t.Fatalf("cap = %d", cache.Cap())
	}
	// Churn far past the capacity: the bound must hold throughout.
	for i := 0; i < 100; i++ {
		cache.PutGoal(fmt.Sprintf("goal-%d", i), &TestPacket{GoalKey: fmt.Sprintf("g%d", i), Port: 1})
		if cache.Len() > cache.Cap() {
			t.Fatalf("after %d puts: len %d exceeds cap %d", i+1, cache.Len(), cache.Cap())
		}
	}
	if cache.Len() != 4 {
		t.Fatalf("len = %d, want 4", cache.Len())
	}
	// The most recent entries survive; the oldest were evicted.
	if _, ok := cache.GetGoal("goal-99"); !ok {
		t.Error("most recent entry evicted")
	}
	if _, ok := cache.GetGoal("goal-0"); ok {
		t.Error("oldest entry not evicted")
	}
	// A Get refreshes recency: touch goal-96, add one more, and the
	// untouched goal-97 goes instead.
	if _, ok := cache.GetGoal("goal-96"); !ok {
		t.Fatal("goal-96 missing")
	}
	cache.PutGoal("goal-100", nil)
	if _, ok := cache.GetGoal("goal-96"); !ok {
		t.Error("recently used entry evicted")
	}
	if _, ok := cache.GetGoal("goal-97"); ok {
		t.Error("least recently used entry survived")
	}
	// Cached packets are private copies: mutating the caller's packet
	// after Put must not leak into the cache.
	pkt := &TestPacket{GoalKey: "mut", Data: []byte{1}}
	cache.PutGoal("mut", pkt)
	pkt.GoalKey = "changed"
	if got, _ := cache.GetGoal("mut"); got == nil || got.GoalKey != "mut" {
		t.Error("cache aliased the caller's packet")
	}
}

func TestWANExecutor(t *testing.T) {
	prog := models.WAN()
	store := pdpi.NewStore()
	testutil.RoutingFixture(prog, store)
	ex, err := New(prog, store, Options{})
	if err != nil {
		t.Fatal(err)
	}
	pkts, rep, err := ex.GeneratePackets(CoverEntries)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Covered == 0 {
		t.Fatalf("wan: nothing covered: %+v", rep)
	}
	sim, err := bmv2.New(prog, store)
	if err != nil {
		t.Fatal(err)
	}
	for _, pkt := range pkts {
		out, err := sim.Run(bmv2.Input{Port: pkt.Port, Packet: pkt.Data})
		if err != nil {
			t.Errorf("goal %s: %v", pkt.GoalKey, err)
			continue
		}
		if !hitsGoal(out, pkt.GoalKey) {
			t.Errorf("wan goal %s not hit; trace %+v", pkt.GoalKey, out.Trace)
		}
	}
}
