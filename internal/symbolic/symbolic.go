// Package symbolic implements p4-symbolic (§5): guarded-command symbolic
// execution of a P4 model with concrete table entries, producing
//
//   - X: one unconstrained bitvector variable per input header/metadata
//     field,
//   - Y: the output symbolic state mapping each field to an expression
//     over X,
//   - T: the symbolic trace mapping every control construct (table entry,
//     default action, branch) to a boolean guard over X that holds iff the
//     construct executes.
//
// Coverage goals are conjunctions posed over X, Y and T; each satisfiable
// goal yields a concrete test packet extracted from the SMT model.
//
// Unlike per-path symbolic executors (KLEE-style), the program is executed
// in a single pass: side effects are guarded by their branch context, so
// the number of SMT terms is linear in program plus entries rather than
// exponential in the number of traces (§5 "Trace Isolation").
package symbolic

import (
	"fmt"
	"sort"
	"strings"

	"switchv/internal/bmv2"
	"switchv/internal/p4/ir"
	"switchv/internal/p4/pdpi"
	"switchv/internal/p4/value"
	"switchv/internal/smt"
)

// Options configures the executor.
type Options struct {
	// MaxPort constrains the synthesized ingress port to [0, MaxPort).
	// Zero means 32.
	MaxPort uint16
}

// Executor holds the result of symbolically executing a model.
type Executor struct {
	prog  *ir.Program
	store *pdpi.Store
	opts  Options

	b      *smt.Builder
	solver *smt.Solver

	inputs  []*smt.Term // X, by field ID
	outputs []*smt.Term // Y, by field ID
	trace   map[string]*smt.Term
	keys    []string // trace keys in first-recorded order

	halt     *smt.Term // guard under which exit was executed
	returned *smt.Term // guard under which return was executed (per control)

	branchSeq int

	// Table application order, for per-goal dependency tracking: a
	// goal on table T can only be influenced by entries of tables
	// applied no later than T's last application.
	applySeq   int
	firstApply map[string]int
	lastApply  map[string]int

	// lazyAsserts routes pipeline assertions through the solver's
	// sliceable lazy path (smt.AssertLazy) instead of eager unit
	// clauses. The parallel generator enables it so per-goal checks can
	// be slice-restricted; the sequential baseline keeps eager
	// assertions, whose CNF is bit-identical to the historical encoding.
	lazyAsserts bool

	// keyState snapshots the symbolic key expressions of each table at
	// its first application: keyState[table][i] is the state term the
	// i-th key field is matched against. The witness engine uses it to
	// tell which keys are still the raw input variables (directly
	// patchable in a candidate model) and to read a seed model's values
	// for the others.
	keyState map[string][]*smt.Term
	// choiceVars lists the selector-choice variables, one per selector
	// entry. A model only constrains the choice of entries it fires; the
	// witness engine pins them all to member 0 (always valid) so grafted
	// candidates cannot inherit garbage choices for entries the seed
	// never fired.
	choiceVars []*smt.Term
}

// TraceKeyEntry names the trace guard for a concrete entry of a table.
func TraceKeyEntry(table string, e *pdpi.Entry) string {
	return "table:" + table + ":entry:" + e.Key()
}

// TraceKeyDefault names the trace guard for a table's default action.
func TraceKeyDefault(table string) string { return "table:" + table + ":default" }

// New symbolically executes the model against the store's entries. The
// store must not be mutated afterwards (re-run New instead; see Cache).
func New(prog *ir.Program, store *pdpi.Store, opts Options) (*Executor, error) {
	return newExecutor(prog, store, opts, false)
}

func newExecutor(prog *ir.Program, store *pdpi.Store, opts Options, lazy bool) (*Executor, error) {
	if opts.MaxPort == 0 {
		opts.MaxPort = 32
	}
	b := smt.NewBuilder()
	ex := &Executor{
		prog:       prog,
		store:      store,
		opts:       opts,
		b:          b,
		solver:     smt.NewSolver(b),
		trace:      map[string]*smt.Term{},
		firstApply: map[string]int{},
		lastApply:  map[string]int{},
		keyState:   map[string][]*smt.Term{},
	}
	ex.lazyAsserts = lazy
	ex.halt = b.False()

	// X: one variable per field.
	ex.inputs = make([]*smt.Term, len(prog.Fields))
	state := make([]*smt.Term, len(prog.Fields))
	for i, f := range prog.Fields {
		v := b.BV("x!"+f.Name, f.Width)
		ex.inputs[i] = v
		state[i] = v
	}

	if err := ex.assertParserAxioms(); err != nil {
		return nil, err
	}

	// Execute the pipeline.
	for _, ctrl := range prog.Controls {
		ex.returned = b.False()
		g := b.Not(ex.halt)
		ex.runStmts(state, ctrl.Body, g, nil)
	}
	ex.outputs = state
	// The canonical background model completes sliced checks (see
	// smt.CheckSliced): an untagged all-zero frame with only ethernet
	// valid, parseable under every chain shape.
	ex.solver.SetBackground(zeroSeed(ex))
	return ex, nil
}

// assert registers a pipeline assertion: eagerly (historical unit
// clauses) or through the solver's lazy, sliceable path, which
// constrains every check identically but defers the CNF encoding until
// a check's slice first reaches the assertion.
func (ex *Executor) assert(t *smt.Term) {
	if ex.lazyAsserts {
		ex.solver.AssertLazy(t)
		return
	}
	ex.solver.Assert(t)
}

// Builder exposes the term builder so callers can pose custom coverage
// assertions over X, Y and T (§5 "Coverage Constraints").
func (ex *Executor) Builder() *smt.Builder { return ex.b }

// Input returns the X variable of a field.
func (ex *Executor) Input(f *ir.Field) *smt.Term { return ex.inputs[f.ID] }

// Output returns the Y expression of a field.
func (ex *Executor) Output(f *ir.Field) *smt.Term { return ex.outputs[f.ID] }

// Trace returns the guard of a trace key, or false if the construct was
// never reached.
func (ex *Executor) Trace(key string) *smt.Term {
	if t, ok := ex.trace[key]; ok {
		return t
	}
	return ex.b.False()
}

// TraceKeys lists all recorded trace keys in execution order.
func (ex *Executor) TraceKeys() []string { return ex.keys }

func (ex *Executor) recordTrace(key string, guard *smt.Term) {
	if old, ok := ex.trace[key]; ok {
		ex.trace[key] = ex.b.Or(old, guard)
		return
	}
	ex.trace[key] = guard
	ex.keys = append(ex.keys, key)
}

// assertParserAxioms couples header validity bits with the discriminator
// fields the (semi-hardcoded) parser uses, so models of X always
// correspond to parseable packets.
func (ex *Executor) assertParserAxioms() error {
	b := ex.b
	prefix := ""
	if len(ex.prog.HeaderInstances) > 0 {
		path := ex.prog.HeaderInstances[0].Path
		for i := 0; i < len(path); i++ {
			if path[i] == '.' {
				prefix = path[:i]
				break
			}
		}
	}
	field := func(name string) *smt.Term {
		if f, ok := ex.prog.FieldByName(prefix + "." + name); ok {
			return ex.inputs[f.ID]
		}
		return nil
	}
	valid := func(name string) *smt.Term {
		if t := field(name + ".$valid"); t != nil {
			return b.Eq(t, b.ConstUint(1, 1))
		}
		return nil
	}
	has := func(name string) bool { return field(name+".$valid") != nil }

	ethValid := valid("ethernet")
	if ethValid == nil {
		return fmt.Errorf("symbolic: model has no ethernet header")
	}
	ex.assert(ethValid)

	etherType := field("ethernet.ether_type")
	eff := etherType // effective EtherType after optional VLAN tag
	if has("vlan") {
		vlanValid := valid("vlan")
		ex.assert(b.Iff(vlanValid, b.Eq(etherType, b.ConstUint(0x8100, 16))))
		eff = b.Ite(vlanValid, field("vlan.ether_type"), etherType)
	} else {
		ex.assert(b.Ne(etherType, b.ConstUint(0x8100, 16)))
	}

	assertIffValid := func(name string, cond *smt.Term) {
		if v := valid(name); v != nil {
			ex.assert(b.Iff(v, cond))
		}
	}
	assertIffValid("ipv4", b.Eq(eff, b.ConstUint(0x0800, 16)))
	assertIffValid("ipv6", b.Eq(eff, b.ConstUint(0x86DD, 16)))
	assertIffValid("arp", b.Eq(eff, b.ConstUint(0x0806, 16)))
	if !has("ipv4") {
		ex.assert(b.Ne(eff, b.ConstUint(0x0800, 16)))
	}
	if !has("ipv6") {
		ex.assert(b.Ne(eff, b.ConstUint(0x86DD, 16)))
	}

	ipProto := func(want uint64) *smt.Term {
		var cond *smt.Term = b.False()
		if has("ipv4") {
			cond = b.Or(cond, b.And(valid("ipv4"), b.Eq(field("ipv4.protocol"), b.ConstUint(want, 8))))
		}
		return cond
	}
	ip6Next := func(want uint64) *smt.Term {
		if has("ipv6") {
			return b.And(valid("ipv6"), b.Eq(field("ipv6.next_header"), b.ConstUint(want, 8)))
		}
		return b.False()
	}
	assertIffValid("tcp", b.Or(ipProto(6), ip6Next(6)))
	assertIffValid("udp", b.Or(ipProto(17), ip6Next(17)))
	assertIffValid("icmp", b.Or(ipProto(1), ip6Next(58)))
	assertIffValid("gre", ipProto(47))
	if has("inner_ipv4") {
		assertIffValid("inner_ipv4",
			b.And(valid("gre"), b.Eq(field("gre.protocol"), b.ConstUint(0x0800, 16))))
	}
	// Forbid GRE when the model cannot parse it (no gre header): otherwise
	// the simulator and switch would see opaque payload where the model
	// assumed fields.
	if !has("gre") && has("ipv4") {
		ex.assert(b.Not(ipProto(47)))
	}

	// Fields of invalid headers read as zero, exactly as the reference
	// parser leaves them. Without this, the solver could synthesize
	// packets relying on undefined reads of invalid header fields.
	for _, hi := range ex.prog.HeaderInstances {
		vf, ok := ex.prog.FieldByName(hi.Path + ".$valid")
		if !ok {
			continue
		}
		invalid := b.Eq(ex.inputs[vf.ID], b.ConstUint(0, 1))
		for _, f := range ex.prog.Fields {
			if f.Header != hi.Path || f.IsValidity {
				continue
			}
			ex.assert(b.Implies(invalid, b.Eq(ex.inputs[f.ID], b.Const(value.Zero(f.Width)))))
		}
	}

	// Ingress port range.
	if f, ok := ex.prog.FieldByName(ir.FieldIngressPort); ok {
		port := ex.inputs[f.ID]
		ex.assert(b.Ult(port, b.ConstUint(uint64(ex.opts.MaxPort), port.Width())))
	}
	// The synthetic pipeline-state fields start out zero.
	for _, name := range []string{ir.FieldDrop, ir.FieldPunt, ir.FieldCopy, ir.FieldMirror, ir.FieldMirrorSession} {
		if f, ok := ex.prog.FieldByName(name); ok {
			ex.assert(b.Eq(ex.inputs[f.ID], b.Const(value.Zero(f.Width))))
		}
	}
	// Metadata fields (everything outside the headers struct and standard
	// metadata) start out zero.
	for _, f := range ex.prog.Fields {
		if f.Header != "" || f.Name[0] == '$' {
			continue
		}
		if prefix != "" && len(f.Name) > len(prefix) && f.Name[:len(prefix)+1] == prefix+"." {
			continue
		}
		if f.Name == ir.FieldIngressPort || f.Name == "standard_metadata.egress_port" ||
			f.Name == ir.FieldEgressSpec {
			if f.Name != ir.FieldIngressPort {
				ex.assert(b.Eq(ex.inputs[f.ID], b.Const(value.Zero(f.Width))))
			}
			continue
		}
		ex.assert(b.Eq(ex.inputs[f.ID], b.Const(value.Zero(f.Width))))
	}
	return nil
}

// runStmts executes statements under guard g, returning the surviving
// guard (g minus paths that exited or returned).
func (ex *Executor) runStmts(state []*smt.Term, stmts []ir.Stmt, g *smt.Term, args []*smt.Term) *smt.Term {
	b := ex.b
	for _, st := range stmts {
		switch x := st.(type) {
		case *ir.Assign:
			rhs := b.Resize(ex.eval(state, &x.Src, args), x.Dst.Width)
			state[x.Dst.ID] = b.Ite(g, rhs, state[x.Dst.ID])
		case *ir.If:
			cond := ex.evalBool(state, &x.Cond, args)
			ex.branchSeq++
			key := fmt.Sprintf("branch:%d", ex.branchSeq)
			gThen := b.And(g, cond)
			gElse := b.And(g, b.Not(cond))
			ex.recordTrace(key+":then", gThen)
			ex.recordTrace(key+":else", gElse)
			outThen := ex.runStmts(state, x.Then, gThen, args)
			outElse := ex.runStmts(state, x.Else, gElse, args)
			g = b.Or(outThen, outElse)
		case *ir.ApplyTable:
			ex.applyTable(state, x.Table, g)
		case *ir.Exit:
			ex.halt = b.Or(ex.halt, g)
			g = b.False()
		case *ir.Return:
			ex.returned = b.Or(ex.returned, g)
			g = b.False()
		default:
			panic(fmt.Sprintf("symbolic: unknown statement %T", st))
		}
	}
	return g
}

// eval lowers an IR expression to a bitvector term.
func (ex *Executor) eval(state []*smt.Term, e *ir.Expr, args []*smt.Term) *smt.Term {
	b := ex.b
	switch e.Op {
	case ir.OpConst:
		return b.ConstUint(e.Value, e.Width)
	case ir.OpField:
		return state[e.Field.ID]
	case ir.OpParam:
		return args[e.Param]
	case ir.OpMux:
		return b.Ite(ex.evalBool(state, e.Args[0], args),
			ex.eval(state, e.Args[1], args), ex.eval(state, e.Args[2], args))
	case ir.OpBitNot:
		return b.BVNot(ex.eval(state, e.Args[0], args))
	case ir.OpBitAnd:
		return b.BVAnd(ex.eval(state, e.Args[0], args), ex.eval(state, e.Args[1], args))
	case ir.OpBitOr:
		return b.BVOr(ex.eval(state, e.Args[0], args), ex.eval(state, e.Args[1], args))
	case ir.OpBitXor:
		return b.BVXor(ex.eval(state, e.Args[0], args), ex.eval(state, e.Args[1], args))
	case ir.OpAdd:
		return b.BVAdd(ex.eval(state, e.Args[0], args), ex.eval(state, e.Args[1], args))
	case ir.OpSub:
		return b.BVSub(ex.eval(state, e.Args[0], args), ex.eval(state, e.Args[1], args))
	case ir.OpShl, ir.OpShr:
		amount := e.Args[1]
		if amount.Op != ir.OpConst {
			panic("symbolic: only constant shift amounts are supported")
		}
		x := ex.eval(state, e.Args[0], args)
		if e.Op == ir.OpShl {
			return b.BVShlConst(x, int(amount.Value))
		}
		return b.BVShrConst(x, int(amount.Value))
	default:
		// Boolean-valued operators used in a value position: reify as a
		// 1-bit vector.
		cond := ex.evalBool(state, e, args)
		return b.Ite(cond, b.ConstUint(1, 1), b.ConstUint(0, 1))
	}
}

// evalBool lowers an IR expression to a boolean term.
func (ex *Executor) evalBool(state []*smt.Term, e *ir.Expr, args []*smt.Term) *smt.Term {
	b := ex.b
	switch e.Op {
	case ir.OpEq:
		return b.Eq(ex.eval(state, e.Args[0], args), ex.eval(state, e.Args[1], args))
	case ir.OpNe:
		return b.Ne(ex.eval(state, e.Args[0], args), ex.eval(state, e.Args[1], args))
	case ir.OpLt:
		return b.Ult(ex.eval(state, e.Args[0], args), ex.eval(state, e.Args[1], args))
	case ir.OpLe:
		return b.Ule(ex.eval(state, e.Args[0], args), ex.eval(state, e.Args[1], args))
	case ir.OpGt:
		return b.Ult(ex.eval(state, e.Args[1], args), ex.eval(state, e.Args[0], args))
	case ir.OpGe:
		return b.Ule(ex.eval(state, e.Args[1], args), ex.eval(state, e.Args[0], args))
	case ir.OpAnd:
		return b.And(ex.evalBool(state, e.Args[0], args), ex.evalBool(state, e.Args[1], args))
	case ir.OpOr:
		return b.Or(ex.evalBool(state, e.Args[0], args), ex.evalBool(state, e.Args[1], args))
	case ir.OpNot:
		return b.Not(ex.evalBool(state, e.Args[0], args))
	case ir.OpMux:
		return b.Ite(ex.evalBool(state, e.Args[0], args),
			ex.evalBool(state, e.Args[1], args), ex.evalBool(state, e.Args[2], args))
	default:
		// A 1-bit value used as a condition.
		v := ex.eval(state, e, args)
		return b.Ne(v, b.Const(value.Zero(v.Width())))
	}
}

// applyTable symbolically applies a table under guard g: every entry gets
// a firing guard (its match, minus all higher-precedence matches, §5
// Example), its action executes under that guard, and the default action
// fires when nothing matches.
func (ex *Executor) applyTable(state []*smt.Term, t *ir.Table, g *smt.Term) {
	b := ex.b
	ex.applySeq++
	if _, ok := ex.firstApply[t.Name]; !ok {
		ex.firstApply[t.Name] = ex.applySeq
		ks := make([]*smt.Term, len(t.Keys))
		for i, k := range t.Keys {
			ks[i] = state[k.Field.ID]
		}
		ex.keyState[t.Name] = ks
	}
	ex.lastApply[t.Name] = ex.applySeq
	entries := orderEntries(t, ex.store)
	notHigher := b.True()
	for entryIdx, e := range entries {
		m := ex.matchCond(state, t, e)
		fire := b.And(g, b.And(notHigher, m))
		ex.recordTrace(TraceKeyEntry(t.Name, e), fire)
		notHigher = b.And(notHigher, b.Not(m))
		if t.IsSelector {
			// Member selection models the hash as a free operation: a
			// fresh choice variable, constrained only to pick some member
			// (§5 "Hashing").
			choice := b.BV(fmt.Sprintf("choice!%s!%d", t.Name, entryIdx), 16)
			ex.choiceVars = append(ex.choiceVars, choice)
			ex.assert(b.Implies(fire, b.Ult(choice, b.ConstUint(uint64(len(e.ActionSet)), 16))))
			for i := range e.ActionSet {
				member := &e.ActionSet[i]
				gm := b.And(fire, b.Eq(choice, b.ConstUint(uint64(i), 16)))
				ex.runAction(state, &member.ActionInvocation, gm)
			}
			continue
		}
		ex.runAction(state, e.Action, fire)
	}
	defFire := b.And(g, notHigher)
	ex.recordTrace(TraceKeyDefault(t.Name), defFire)
	defArgs := make([]*smt.Term, len(t.DefaultAction.Params))
	for i, p := range t.DefaultAction.Params {
		var arg uint64
		if i < len(t.DefaultActionArgs) {
			arg = t.DefaultActionArgs[i]
		}
		defArgs[i] = b.ConstUint(arg, p.Width)
	}
	ex.runStmts(state, t.DefaultAction.Body, defFire, defArgs)
}

func (ex *Executor) runAction(state []*smt.Term, inv *pdpi.ActionInvocation, g *smt.Term) {
	args := make([]*smt.Term, len(inv.Args))
	for i, a := range inv.Args {
		args[i] = ex.b.Const(a)
	}
	ex.runStmts(state, inv.Action.Body, g, args)
}

// matchCond builds the condition under which an entry matches the current
// symbolic state.
func (ex *Executor) matchCond(state []*smt.Term, t *ir.Table, e *pdpi.Entry) *smt.Term {
	b := ex.b
	cond := b.True()
	for _, m := range e.Matches {
		k, ok := t.KeyByName(m.Key)
		if !ok {
			return b.False()
		}
		fv := state[k.Field.ID]
		switch m.Kind {
		case ir.MatchExact, ir.MatchOptional:
			cond = b.And(cond, b.Eq(fv, b.Const(m.Value)))
		case ir.MatchLPM:
			mask := value.PrefixMask(m.PrefixLen, k.Field.Width)
			cond = b.And(cond, b.Eq(b.BVAnd(fv, b.Const(mask)), b.Const(m.Value.And(mask))))
		case ir.MatchTernary:
			cond = b.And(cond, b.Eq(b.BVAnd(fv, b.Const(m.Mask)), b.Const(m.Value)))
		}
	}
	return cond
}

// orderEntries returns a table's entries in descending match precedence,
// mirroring the reference simulator's selection: priority tables by
// (priority desc, insertion asc); LPM tables by prefix length desc.
func orderEntries(t *ir.Table, store *pdpi.Store) []*pdpi.Entry {
	// Copy before sorting: Entries returns the store's shared cache in
	// insertion order, which the simulator's tie-breaking depends on.
	entries := append([]*pdpi.Entry(nil), store.Entries(t.Name)...)
	if pdpi.NeedsPriority(t) {
		sort.SliceStable(entries, func(i, j int) bool {
			return entries[i].Priority > entries[j].Priority
		})
		return entries
	}
	lpmKey := ""
	for _, k := range t.Keys {
		if k.Match == ir.MatchLPM {
			lpmKey = k.Name
		}
	}
	if lpmKey != "" {
		plen := func(e *pdpi.Entry) int {
			if m, ok := e.Match(lpmKey); ok {
				return m.PrefixLen
			}
			return -1
		}
		sort.SliceStable(entries, func(i, j int) bool { return plen(entries[i]) > plen(entries[j]) })
	}
	return entries
}

// DepEntries returns the installed entries that can influence a goal's
// guard, in deterministic store order: for a goal on table T (an entry
// or default-action goal), the entries of every table applied no later
// than T's last application; for any other goal (branch or enriched,
// whose condition may range over the whole of X, Y and T), every entry.
// Per-goal cache keys are derived from this set, so entry churn in
// tables applied after T leaves T's goals cached.
func (ex *Executor) DepEntries(goalKey string) []*pdpi.Entry {
	all := ex.store.All(ex.prog)
	table := goalTable(goalKey)
	if table == "" {
		return all
	}
	cutoff, ok := ex.lastApply[table]
	if !ok {
		return all
	}
	deps := make([]*pdpi.Entry, 0, len(all))
	for _, e := range all {
		if first, applied := ex.firstApply[e.Table.Name]; applied && first <= cutoff {
			deps = append(deps, e)
		}
	}
	return deps
}

// GoalTable extracts the table name from a "table:<t>:..." goal key
// ("" for branch and enriched goals). The preflight pipeline uses it
// to relate goals to the analyzer's unreachable-table set.
func GoalTable(key string) string { return goalTable(key) }

// goalTable extracts the table name from a "table:<t>:..." goal key
// ("" for branch and enriched goals).
func goalTable(key string) string {
	const p = "table:"
	if !strings.HasPrefix(key, p) {
		return ""
	}
	rest := key[len(p):]
	if i := strings.IndexByte(rest, ':'); i >= 0 {
		return rest[:i]
	}
	return ""
}

// Drop/punt/forward observables over Y.

// PuntCond returns the guard under which the packet is punted.
func (ex *Executor) PuntCond() *smt.Term {
	f, _ := ex.prog.FieldByName(ir.FieldPunt)
	return ex.b.Eq(ex.outputs[f.ID], ex.b.ConstUint(1, 1))
}

// DropCond returns the guard under which the packet is dropped.
func (ex *Executor) DropCond() *smt.Term {
	b := ex.b
	f, _ := ex.prog.FieldByName(ir.FieldDrop)
	return b.And(b.Eq(ex.outputs[f.ID], b.ConstUint(1, 1)), b.Not(ex.PuntCond()))
}

// ForwardCond returns the guard under which the packet is forwarded.
func (ex *Executor) ForwardCond() *smt.Term {
	return ex.b.Not(ex.b.Or(ex.PuntCond(), ex.DropCond()))
}

// bmv2DeparseFields is indirected for testing.
var bmv2DeparseFields = bmv2.DeparseFields
