package symbolic

import (
	"sort"
	"strings"
	"testing"

	"switchv/internal/p4/pdpi"
	"switchv/internal/workload"
	"switchv/models"
)

// FuzzWitnessVsSolver differentially tests the solver-free witness
// pre-pass against the pure solver path: over fuzzed (entry count, seed)
// workloads, both configurations must reach the identical verdict for
// every goal — the same goal universe, the same covered set, the same
// unreachable set. The witness layer is only allowed to skip SMT checks,
// never to change an answer, and every witnessed packet must satisfy its
// goal (confirmed here by the covered-set equality, since an unconfirmed
// witness would have fallen back to the solver and changed SMTChecks,
// not the verdict).
func FuzzWitnessVsSolver(f *testing.F) {
	f.Add(uint8(12), int64(42))
	f.Add(uint8(40), int64(7))
	f.Add(uint8(90), int64(1))
	f.Add(uint8(1), int64(3))
	prog := models.Middleblock()
	coveredSet := func(pkts []TestPacket) string {
		keys := make([]string, len(pkts))
		for i, p := range pkts {
			keys[i] = p.GoalKey
		}
		sort.Strings(keys)
		return strings.Join(keys, "\n")
	}
	f.Fuzz(func(t *testing.T, n uint8, seed int64) {
		entries := workload.MustEntries(prog, 1+int(n)%100, seed)
		store := pdpi.NewStore()
		for _, e := range entries {
			if err := store.Insert(e); err != nil {
				t.Fatal(err)
			}
		}
		run := func(disable bool) ([]TestPacket, Report) {
			pkts, rep, err := GeneratePacketsParallel(prog, store, Options{},
				GenOptions{Mode: CoverEntries, Enriched: true, DisableWitness: disable})
			if err != nil {
				t.Fatal(err)
			}
			return pkts, rep
		}
		wPkts, wRep := run(false)
		sPkts, sRep := run(true)
		if wRep.Goals != sRep.Goals || wRep.Covered != sRep.Covered || wRep.Unreachable != sRep.Unreachable {
			t.Fatalf("verdict counts differ:\n  witness: %+v\n  solver:  %+v", wRep, sRep)
		}
		if w, s := coveredSet(wPkts), coveredSet(sPkts); w != s {
			t.Fatalf("covered goal sets differ (witness-only=%q, solver-only=%q)",
				diffSet(w, s), diffSet(s, w))
		}
		if wRep.SMTChecks > sRep.SMTChecks {
			t.Fatalf("witness path issued more checks (%d) than the solver path (%d)",
				wRep.SMTChecks, sRep.SMTChecks)
		}
	})
}

// FuzzSlicedVsFullBlast differentially tests cone-of-influence slice
// restriction against full-formula solving: over fuzzed (entry count,
// seed) workloads, the sliced and unsliced configurations must reach the
// identical verdict for every goal — the same goal universe, the same
// covered set, the same unreachable set. Slicing is only allowed to
// shrink the assumption set handed to the SAT core (Unsat under a
// subset implies Unsat in full; Sat models are completed from the
// background assignment), never to flip an answer. Packet bytes may
// legitimately differ between the two runs, so only verdicts and goal
// keys are compared.
func FuzzSlicedVsFullBlast(f *testing.F) {
	f.Add(uint8(12), int64(42))
	f.Add(uint8(40), int64(7))
	f.Add(uint8(90), int64(1))
	f.Add(uint8(1), int64(3))
	prog := models.Middleblock()
	coveredSet := func(pkts []TestPacket) string {
		keys := make([]string, len(pkts))
		for i, p := range pkts {
			keys[i] = p.GoalKey
		}
		sort.Strings(keys)
		return strings.Join(keys, "\n")
	}
	f.Fuzz(func(t *testing.T, n uint8, seed int64) {
		entries := workload.MustEntries(prog, 1+int(n)%100, seed)
		store := pdpi.NewStore()
		for _, e := range entries {
			if err := store.Insert(e); err != nil {
				t.Fatal(err)
			}
		}
		run := func(disable bool) ([]TestPacket, Report) {
			pkts, rep, err := GeneratePacketsParallel(prog, store, Options{},
				GenOptions{Mode: CoverEntries, Enriched: true, DisableSlicing: disable})
			if err != nil {
				t.Fatal(err)
			}
			return pkts, rep
		}
		slPkts, slRep := run(false)
		fbPkts, fbRep := run(true)
		if slRep.Goals != fbRep.Goals || slRep.Covered != fbRep.Covered || slRep.Unreachable != fbRep.Unreachable {
			t.Fatalf("verdict counts differ:\n  sliced: %+v\n  full:   %+v", slRep, fbRep)
		}
		if sl, fb := coveredSet(slPkts), coveredSet(fbPkts); sl != fb {
			t.Fatalf("covered goal sets differ (sliced-only=%q, full-only=%q)",
				diffSet(sl, fb), diffSet(fb, sl))
		}
		if fbRep.SlicedAsserts != 0 || fbRep.SlicedBits != 0 {
			t.Fatalf("unsliced run reported slicing activity: %d asserts, %d bits",
				fbRep.SlicedAsserts, fbRep.SlicedBits)
		}
	})
}

// diffSet returns the newline-separated elements of a not present in b.
func diffSet(a, b string) string {
	in := map[string]bool{}
	for _, k := range strings.Split(b, "\n") {
		in[k] = true
	}
	var out []string
	for _, k := range strings.Split(a, "\n") {
		if !in[k] {
			out = append(out, k)
		}
	}
	return strings.Join(out, ",")
}
