// Solver-free witness synthesis (ROADMAP item 3): most table goals on
// realistic entry sets are pairwise-disjoint exact/LPM/ternary matches,
// so model-reuse pruning can never absorb them — each would pay a full
// SMT check. But their reachability reduces to key arithmetic: a packet
// hits entry E of table T iff its key values satisfy E's match while
// escaping every higher-precedence entry. That predicate is computed
// here as a per-table BDD over the key bits (handling correlated and
// shadowed prefixes exactly, not just the common disjoint case), a
// candidate key assignment is read off deterministically (MinSat), and
// the candidate is grafted onto a previously-found seed model. The
// grafted model is confirmed end-to-end by concrete evaluation of the
// goal's full path condition plus every solver assertion (smt.EvalBool
// over the hash-consed DAG) — a confirmed witness is a genuine model of
// the formula, so the goal's SMT check is skipped entirely. Any failure
// falls back to the solver, so verdicts are identical to the solver path
// by construction: the witness layer only ever skips work, never
// changes an answer.
//
// The pre-pass runs sequentially on the shard-0 executor before
// sharding, so its results are independent of the worker count and the
// simulation engine, preserving the generator's determinism contract.
package symbolic

import (
	"switchv/internal/bdd"
	"switchv/internal/p4/dataflow"
	"switchv/internal/p4/ir"
	"switchv/internal/p4/pdpi"
	"switchv/internal/p4/value"
	"switchv/internal/smt"
)

// maxWitnessSeeds bounds each table's seed-model pool. Seeds capture
// distinct pipeline contexts (VRF assignments, parse states); a handful
// per table suffices because each solver fallback on that table
// contributes its model as a fresh seed. Pools are per table so an
// early table's context diversity cannot starve a later one (an IPv6
// route goal needs an IPv6-parsed seed, which no IPv4 goal provides).
const maxWitnessSeeds = 16

// keySlot is one key field of a witnessed table: its bit range in the
// table's BDD, the symbolic expression it is matched against, and
// whether a candidate model can set it directly.
type keySlot struct {
	key   ir.KeyField
	off   int       // first BDD variable (MSB) of this key
	state *smt.Term // symbolic key expression at first application
	// patchable keys are matched against their raw input variable (no
	// pipeline rewrite before the table) and are not validity bits, so a
	// candidate may assign them freely; the rest are pinned to a seed
	// model's value.
	patchable bool
	// raw keys are matched against their raw input variable, validity
	// bits included. The validity-aware synthesis path (synthFree)
	// assigns raw slots directly and repairs the parser context around
	// them, where the seed-pinned path (synth) treats validity bits as
	// pinned pipeline state.
	raw bool
}

// tableWitness is the per-table BDD precedence model: base[goalKey] is
// the exact condition over the key bits under which that entry (or the
// default action) is selected — its match, minus every higher-precedence
// match, mirroring applyTable's guard construction entry for entry.
type tableWitness struct {
	bld    *bdd.Builder
	slots  []keySlot
	global bdd.Node // range constraints (ingress port < MaxPort)
	base   map[string]bdd.Node
	// ps is the static parser model; coupled is the parser-consistency
	// constraint over the slots (validity bits follow their EtherType /
	// protocol discriminators), conjoined by the validity-aware
	// synthesis path so MinSat never proposes an unparseable context.
	ps      *dataflow.Parser
	coupled bdd.Node
}

// newTableWitness builds the witness model for a table, or nil when the
// table is not witnessable (never applied, or no patchable key — its
// selection then depends entirely on upstream pipeline state, which key
// arithmetic cannot steer).
func newTableWitness(ex *Executor, t *ir.Table) *tableWitness {
	ks, ok := ex.keyState[t.Name]
	if !ok {
		return nil
	}
	slots := make([]keySlot, len(t.Keys))
	total, anyPatch := 0, false
	for i, k := range t.Keys {
		raw := ks[i] == ex.inputs[k.Field.ID]
		patchable := raw && !k.Field.IsValidity
		slots[i] = keySlot{key: k, off: total, state: ks[i], patchable: patchable, raw: raw}
		total += k.Field.Width
		anyPatch = anyPatch || patchable
	}
	if !anyPatch {
		return nil
	}
	bld := bdd.New(total)
	global := bdd.True
	for _, s := range slots {
		if s.patchable && s.key.Field.Name == ir.FieldIngressPort {
			bits := make([]int, s.key.Field.Width)
			for j := range bits {
				bits[j] = s.off + j
			}
			global = bld.And(global, bld.LtConst(bits, uint64(ex.opts.MaxPort)))
		}
	}
	tw := &tableWitness{bld: bld, slots: slots, global: global, base: map[string]bdd.Node{},
		ps: dataflow.ParserOf(ex.prog)}
	tw.coupled = tw.couplingNode(ex)
	notHigher := bdd.True
	for _, e := range orderEntries(t, ex.store) {
		m := tw.matchNode(e)
		tw.base[TraceKeyEntry(t.Name, e)] = bld.And(notHigher, m)
		notHigher = bld.And(notHigher, bld.Not(m))
	}
	tw.base[TraceKeyDefault(t.Name)] = notHigher
	return tw
}

// slotFor returns the slot matching on the given field (nil when the
// field is not a key of this table or f is nil).
func (tw *tableWitness) slotFor(f *ir.Field) *keySlot {
	if f == nil {
		return nil
	}
	for i := range tw.slots {
		if tw.slots[i].key.Field == f {
			return &tw.slots[i]
		}
	}
	return nil
}

// validitySlotFor returns the raw slot on the header's $valid bit, if any.
func (tw *tableWitness) validitySlotFor(header string) *keySlot {
	for i := range tw.slots {
		s := &tw.slots[i]
		if s.raw && s.key.Field.IsValidity && s.key.Field.Header == header {
			return s
		}
	}
	return nil
}

// eqSlotConst constrains the slot's bits to a constant value.
func (tw *tableWitness) eqSlotConst(s *keySlot, v uint64) bdd.Node {
	w := s.key.Field.Width
	return tw.eqBits(s.off, w, value.New(v, w), value.PrefixMask(w, w))
}

// nonZero is the condition that the slot's bits are not all zero.
func (tw *tableWitness) nonZero(s *keySlot) bdd.Node {
	return tw.bld.Not(tw.eqSlotConst(s, 0))
}

// slotVal reads the slot's assigned value off a MinSat assignment.
func (tw *tableWitness) slotVal(s *keySlot, assign []bool) value.V {
	w := s.key.Field.Width
	v := value.Zero(w)
	for j := 0; j < w; j++ {
		if assign[s.off+(w-1-j)] {
			v = v.SetBit(j, true)
		}
	}
	return v
}

// couplingNode builds the parser-consistency constraints over the
// table's slots, mirroring assertParserAxioms at the BDD level:
//
//   - candidates stay untagged (EtherType != 0x8100) when the program
//     has a VLAN header, so the raw EtherType is the effective one;
//   - a header's validity slot holds iff the EtherType slot selects it,
//     and at most one L3 validity slot holds;
//   - a nonzero header-field slot requires its header parsed: its
//     validity slot (or EtherType selection) for L3 fields, the right
//     ipv4.protocol slot value for L4 fields.
//
// The constraints only prune candidates MinSat would otherwise propose
// and confirm() would reject; they are deliberately over-strict (e.g.
// no VLAN-tagged or IPv6-carried-L4 witnesses) — goals needing those
// contexts fall back to the solver.
func (tw *tableWitness) couplingNode(ex *Executor) bdd.Node {
	ps := tw.ps
	prefix := ps.Prefix
	if prefix == "" {
		return bdd.True
	}
	bld := tw.bld
	cons := bdd.True
	etherField, _ := ex.prog.FieldByName(prefix + ".ethernet.ether_type")
	etherSlot := tw.slotFor(etherField)
	if etherSlot != nil && !etherSlot.raw {
		etherSlot = nil
	}
	if etherSlot != nil && ps.Reachable(prefix+".vlan") {
		cons = bld.And(cons, bld.Not(tw.eqSlotConst(etherSlot, 0x8100)))
	}
	var l3Validity []*keySlot
	for i := range tw.slots {
		s := &tw.slots[i]
		f := s.key.Field
		if !f.IsValidity || !s.raw {
			continue
		}
		spec, ok := ps.Spec(f.Header)
		if !ok || spec.Role != dataflow.RoleL3 {
			continue
		}
		for _, prev := range l3Validity {
			cons = bld.And(cons, bld.Not(bld.And(bld.Var(s.off), bld.Var(prev.off))))
		}
		l3Validity = append(l3Validity, s)
		if etherSlot != nil {
			cons = bld.And(cons, bld.Iff(bld.Var(s.off), tw.eqSlotConst(etherSlot, spec.EtherType)))
		}
	}
	protoField, _ := ex.prog.FieldByName(prefix + ".ipv4.protocol")
	protoSlot := tw.slotFor(protoField)
	if protoSlot != nil && !protoSlot.raw {
		protoSlot = nil
	}
	for i := range tw.slots {
		s := &tw.slots[i]
		f := s.key.Field
		if f.IsValidity || f.Header == "" || !s.raw {
			continue
		}
		spec, ok := ps.Spec(f.Header)
		if !ok {
			continue
		}
		var need bdd.Node
		have := false
		switch spec.Role {
		case dataflow.RoleL3:
			if vs := tw.validitySlotFor(f.Header); vs != nil {
				need, have = bld.Var(vs.off), true
			} else if etherSlot != nil {
				need, have = tw.eqSlotConst(etherSlot, spec.EtherType), true
			}
		case dataflow.RoleL4:
			if protoSlot != nil && protoSlot != s && spec.Proto >= 0 {
				// proto != 0 implies ipv4 parsed via proto's own L3 rule.
				need, have = tw.eqSlotConst(protoSlot, uint64(spec.Proto)), true
			}
		}
		if have {
			cons = bld.And(cons, bld.Implies(tw.nonZero(s), need))
		}
	}
	return cons
}

// matchNode lowers an entry's match to the key-bit BDD, mirroring
// Executor.matchCond: exact/optional pin every bit, LPM pins the top
// PrefixLen bits, ternary pins the mask's bits, absent matches are
// unconstrained, and an unknown key never matches.
func (tw *tableWitness) matchNode(e *pdpi.Entry) bdd.Node {
	cond := bdd.True
	for i := range e.Matches {
		m := &e.Matches[i]
		var slot *keySlot
		for j := range tw.slots {
			if tw.slots[j].key.Name == m.Key {
				slot = &tw.slots[j]
				break
			}
		}
		if slot == nil {
			return bdd.False
		}
		w := slot.key.Field.Width
		switch m.Kind {
		case ir.MatchExact, ir.MatchOptional:
			cond = tw.bld.And(cond, tw.eqBits(slot.off, w, m.Value, value.PrefixMask(w, w)))
		case ir.MatchLPM:
			mask := value.PrefixMask(m.PrefixLen, w)
			cond = tw.bld.And(cond, tw.eqBits(slot.off, w, m.Value.And(mask), mask))
		case ir.MatchTernary:
			cond = tw.bld.And(cond, tw.eqBits(slot.off, w, m.Value.And(m.Mask), m.Mask))
		}
	}
	return cond
}

// eqBits constrains the masked bits of the key at off (width w, BDD
// variables MSB-first) to the value's bits.
func (tw *tableWitness) eqBits(off, w int, v, mask value.V) bdd.Node {
	cond := bdd.True
	for j := 0; j < w; j++ { // j indexes value bits, LSB first
		if !mask.Bit(j) {
			continue
		}
		vi := off + (w - 1 - j)
		if v.Bit(j) {
			cond = tw.bld.And(cond, tw.bld.Var(vi))
		} else {
			cond = tw.bld.And(cond, tw.bld.NVar(vi))
		}
	}
	return cond
}

// pinSeed conjoins the constraint that every pinned (non-patchable) key
// equals its value under the seed model, evaluated through the key's
// symbolic state expression. False means this seed's pipeline context
// cannot select the goal entry, whatever the patchable keys.
func (tw *tableWitness) pinSeed(seed *smt.Model, node bdd.Node) bdd.Node {
	for i := range tw.slots {
		s := &tw.slots[i]
		if s.patchable {
			continue
		}
		w := s.key.Field.Width
		v := smt.Eval(seed, s.state).WithWidth(w)
		node = tw.bld.And(node, tw.eqBits(s.off, w, v, value.PrefixMask(w, w)))
		if node == bdd.False {
			return bdd.False
		}
	}
	return node
}

// synth reads the deterministic minimum satisfying key assignment off
// the pinned BDD and grafts the patchable key values onto the seed,
// returning the candidate model (nil when the pinned BDD is UNSAT).
// Every selector-choice variable is pinned to member 0 — always a valid
// choice — because the seed only constrained the choices of entries it
// actually fired, and the graft may fire different ones.
func (tw *tableWitness) synth(ex *Executor, seed *smt.Model, node bdd.Node) *smt.Model {
	assign, ok := tw.bld.MinSat(tw.pinSeed(seed, node))
	if !ok {
		return nil
	}
	patch := map[*smt.Term]value.V{}
	for _, c := range ex.choiceVars {
		patch[c] = value.Zero(c.Width())
	}
	for i := range tw.slots {
		s := &tw.slots[i]
		if !s.patchable {
			continue
		}
		w := s.key.Field.Width
		v := value.Zero(w)
		for j := 0; j < w; j++ {
			if assign[s.off+(w-1-j)] {
				v = v.SetBit(j, true)
			}
		}
		patch[ex.inputs[s.key.Field.ID]] = v
	}
	return seed.WithVars(patch)
}

// synthFree is the validity-aware synthesis path: every raw slot —
// validity bits included — is free, the parser-coupling constraints
// keep MinSat's proposal parseable, and the candidate is completed by
// (a) deterministically repairing the non-slot parser inputs around the
// assignment (EtherType, L4 validities, zeroed invalid headers) and
// (b) steering each pinned slot's Ite spine to the raw input that feeds
// it under the repaired context. Nothing here is trusted: confirm()
// rejects any repair or steering miss, so mistakes cost a solver call,
// never a wrong verdict.
func (tw *tableWitness) synthFree(ex *Executor, seed *smt.Model, node bdd.Node) *smt.Model {
	assign, ok := tw.bld.MinSat(tw.bld.And(node, tw.coupled))
	if !ok {
		return nil
	}
	patch := map[*smt.Term]value.V{}
	for _, c := range ex.choiceVars {
		patch[c] = value.Zero(c.Width())
	}
	for i := range tw.slots {
		s := &tw.slots[i]
		if s.raw {
			patch[ex.inputs[s.key.Field.ID]] = tw.slotVal(s, assign)
		}
	}
	if !tw.repair(ex, seed, patch, assign) {
		return nil
	}
	for i := range tw.slots {
		s := &tw.slots[i]
		if s.raw {
			continue
		}
		want := tw.slotVal(s, assign)
		cand := seed.WithVars(patch)
		if smt.Eval(cand, s.state).WithWidth(want.Width).Equal(want) {
			continue
		}
		steer(cand, s.state, want, patch)
	}
	return seed.WithVars(patch)
}

// repair rewrites the candidate's raw parser inputs so the slot
// assignment is parser-consistent: it picks the L3 context the
// assignment implies (validity slots > EtherType slot > nonzero L3
// field slots), sets the EtherType and the chain's validity bits for
// it, recomputes the L4/inner validities from the final discriminator
// values, and zeroes every field of every header that ends up invalid
// (the axioms force invalid headers to read as zero). Returns false
// when the assignment is irreparable — a nonzero value pinned inside an
// invalid header.
func (tw *tableWitness) repair(ex *Executor, seed *smt.Model, patch map[*smt.Term]value.V, assign []bool) bool {
	ps := tw.ps
	prefix := ps.Prefix
	if prefix == "" {
		return true
	}
	input := func(name string) *smt.Term {
		if f, ok := ex.prog.FieldByName(name); ok {
			return ex.inputs[f.ID]
		}
		return nil
	}
	cur := func(t *smt.Term) value.V {
		if v, ok := patch[t]; ok {
			return v
		}
		return smt.Eval(seed, t)
	}
	ether := input(prefix + ".ethernet.ether_type")
	etherField, _ := ex.prog.FieldByName(prefix + ".ethernet.ether_type")
	etherSlot := tw.slotFor(etherField)
	if etherSlot != nil && !etherSlot.raw {
		etherSlot = nil
	}

	// Decide the L3 context implied by the assignment.
	want := "" // L3 header (short name) to parse; "" = plain L2
	determined := false
	for i := range tw.slots {
		s := &tw.slots[i]
		f := s.key.Field
		if !f.IsValidity || !s.raw {
			continue
		}
		if spec, ok := ps.Spec(f.Header); ok && spec.Role == dataflow.RoleL3 {
			determined = true
			if want == "" && !tw.slotVal(s, assign).Equal(value.Zero(1)) {
				want = spec.Name
			}
		}
	}
	var etherVal uint64
	switch {
	case etherSlot != nil:
		determined = true
		etherVal = tw.slotVal(etherSlot, assign).Uint64()
		for _, spec := range ps.Chain() {
			if spec.Role == dataflow.RoleL3 && spec.EtherType == etherVal {
				want = spec.Name
			}
		}
	case determined:
		if want != "" {
			if spec, ok := ps.Spec(prefix + "." + want); ok {
				etherVal = spec.EtherType
			}
		}
		if ether != nil {
			patch[ether] = value.New(etherVal, ether.Width())
		}
	default:
		// No explicit context choice: a nonzero L3 field assignment
		// still forces its header parsed.
		for i := range tw.slots {
			s := &tw.slots[i]
			f := s.key.Field
			if f.IsValidity || f.Header == "" || !s.raw {
				continue
			}
			spec, ok := ps.Spec(f.Header)
			if !ok || spec.Role != dataflow.RoleL3 {
				continue
			}
			if !tw.slotVal(s, assign).Equal(value.Zero(f.Width)) {
				want, determined = spec.Name, true
				etherVal = spec.EtherType
				break
			}
		}
		if determined && ether != nil {
			patch[ether] = value.New(etherVal, ether.Width())
		}
	}

	if determined {
		for _, spec := range ps.Chain() {
			var v bool
			switch spec.Role {
			case dataflow.RoleEthernet:
				v = true
			case dataflow.RoleVlan:
				v = etherVal == spec.EtherType
			case dataflow.RoleL3:
				v = spec.Name == want
			default:
				continue // L4/inner recomputed below
			}
			if vt := input(prefix + "." + spec.Name + ".$valid"); vt != nil {
				b := value.Zero(1)
				if v {
					b = value.New(1, 1)
				}
				patch[vt] = b
			}
		}
	}

	// Recompute the L4 and inner validities whenever the context or a
	// protocol discriminator changed under our feet.
	protoT := input(prefix + ".ipv4.protocol")
	v6T := input(prefix + ".ipv6.next_header")
	_, protoPatched := patch[protoT]
	_, v6Patched := patch[v6T]
	if determined || protoPatched || v6Patched {
		headerValid := func(name string) bool {
			vt := input(prefix + "." + name + ".$valid")
			return vt != nil && !cur(vt).Equal(value.Zero(1))
		}
		v4, v6 := headerValid("ipv4"), headerValid("ipv6")
		var proto, v6n uint64
		if v4 && protoT != nil {
			proto = cur(protoT).Uint64()
		}
		if v6 && v6T != nil {
			v6n = cur(v6T).Uint64()
		}
		greValid := false
		for _, spec := range ps.Chain() {
			var v bool
			switch spec.Role {
			case dataflow.RoleL4:
				v = (v4 && spec.Proto >= 0 && proto == uint64(spec.Proto)) ||
					(v6 && spec.V6Next >= 0 && v6n == uint64(spec.V6Next))
				if spec.Name == "gre" {
					greValid = v
				}
			case dataflow.RoleInner:
				gp := input(prefix + ".gre.protocol")
				v = greValid && gp != nil && cur(gp).Uint64() == 0x0800
			default:
				continue
			}
			if vt := input(prefix + "." + spec.Name + ".$valid"); vt != nil {
				b := value.Zero(1)
				if v {
					b = value.New(1, 1)
				}
				patch[vt] = b
			}
		}
	}

	// Axiom compliance: every field of every invalid chain header reads
	// as zero. A nonzero assignment inside one is irreparable.
	for _, spec := range ps.Chain() {
		hpath := prefix + "." + spec.Name
		vt := input(hpath + ".$valid")
		if vt == nil || !cur(vt).Equal(value.Zero(1)) {
			continue
		}
		for _, f := range ex.prog.Fields {
			if f.Header != hpath || f.IsValidity {
				continue
			}
			t := ex.inputs[f.ID]
			if v, ok := patch[t]; ok && !v.Equal(value.Zero(f.Width)) {
				return false
			}
			patch[t] = value.Zero(f.Width)
		}
	}
	return true
}

// steer patches the raw input at the end of the state term's Ite spine
// (evaluated under the candidate so far) so the pinned key evaluates to
// want. Best-effort: a spine that ends in anything but a variable, or a
// conflicting earlier patch, leaves the slot alone — confirm() rejects
// the candidate if those bits mattered.
func steer(cand *smt.Model, state *smt.Term, want value.V, patch map[*smt.Term]value.V) {
	t := state
	for {
		switch t.Op() {
		case smt.OpIte:
			if smt.EvalBool(cand, t.Kid(0)) {
				t = t.Kid(1)
			} else {
				t = t.Kid(2)
			}
		case smt.OpBVZext, smt.OpBVTrunc:
			t = t.Kid(0)
		case smt.OpBVVar:
			w := want.WithWidth(t.Width())
			if v, ok := patch[t]; ok && !v.Equal(w) {
				return
			}
			patch[t] = w
			return
		default:
			return
		}
	}
}

// zeroSeed is the canonical background context: an untagged all-zero L2
// frame (only ethernet valid, EtherType 0 selecting no L3 header). It
// satisfies the parser axioms of every chain shape, so the witness
// layer can synthesize from it before any solver model exists — tables
// whose goals all repair cleanly never pay a single check.
func zeroSeed(ex *Executor) *smt.Model {
	vars := map[*smt.Term]value.V{}
	ps := dataflow.ParserOf(ex.prog)
	if ps.Prefix != "" {
		if f, ok := ex.prog.FieldByName(ps.Prefix + ".ethernet.$valid"); ok {
			vars[ex.inputs[f.ID]] = value.New(1, 1)
		}
	}
	return smt.NewModel(vars)
}

// witnessPass drives the solver-free pre-pass over the goal universe.
type witnessPass struct {
	ex     *Executor
	tables map[string]*tableWitness
	seeds  map[string][]*smt.Model // per-table seed pools
}

// confirm checks that a candidate model genuinely models the executor's
// formula and the goal condition: the goal's full path condition first
// (cheapest to fail), then every assertion the executor ever made
// (parser axioms, selector constraints). A confirmed candidate is
// indistinguishable from a solver model.
func (w *witnessPass) confirm(cand *smt.Model, cond *smt.Term) bool {
	if !smt.EvalBool(cand, cond) {
		return false
	}
	for _, a := range w.ex.solver.AssertedTerms() {
		if !smt.EvalBool(cand, a) {
			return false
		}
	}
	return true
}

// witnessPrepass decides table goals without the solver where possible,
// running sequentially on the shard-0 executor. For each undecided goal
// on a witnessable table it tries, in order: (1) BDD unsatisfiability of
// the goal's key condition (unreachable, zero checks); (2) a synthesized
// candidate per seed, confirmed by concrete evaluation (covered, zero
// checks); (3) the solver (one check — and its SAT model both prunes
// remaining goals and joins the seed pool, teaching the witness layer a
// new pipeline context). Confirmed witnesses prune remaining goals
// exactly like solver models. Decided goals are recorded in
// outcomes/decided in place.
func (g *Generator) witnessPrepass(decided []bool, outcomes []goalOutcome) error {
	w := &witnessPass{ex: g.ex0, tables: map[string]*tableWitness{}, seeds: map[string][]*smt.Model{}}
	zero := zeroSeed(g.ex0)
	claim := func(self int, m *smt.Model, pkt *TestPacket) {
		for j := range g.goals {
			if decided[j] || j == self {
				continue
			}
			if smt.EvalBool(m, g.goals[j].Cond) {
				decided[j] = true
				outcomes[j] = goalOutcome{
					pkt: &TestPacket{GoalKey: g.goals[j].Key, Port: pkt.Port, Data: pkt.Data},
					how: byPrune,
				}
			}
		}
	}
	for i := range g.goals {
		if decided[i] {
			continue
		}
		goal := g.goals[i]
		tname := goalTable(goal.Key)
		if tname == "" {
			continue
		}
		tw, seen := w.tables[tname]
		if !seen {
			if t, ok := g.prog.TableByName(tname); ok {
				tw = newTableWitness(g.ex0, t)
			}
			w.tables[tname] = tw
		}
		if tw == nil {
			continue
		}
		node, ok := tw.base[goal.Key]
		if !ok {
			continue
		}
		node = tw.bld.And(node, tw.global)
		if node == bdd.False {
			// No key assignment selects this entry (fully shadowed by
			// higher-precedence entries): unreachable without a check.
			decided[i] = true
			outcomes[i] = goalOutcome{how: byWitnessUnsat}
			continue
		}
		var cand *smt.Model
		for _, seed := range append([]*smt.Model{zero}, w.seeds[tname]...) {
			if m := tw.synthFree(g.ex0, seed, node); m != nil && w.confirm(m, goal.Cond) {
				cand = m
				break
			}
			if m := tw.synth(g.ex0, seed, node); m != nil && w.confirm(m, goal.Cond) {
				cand = m
				break
			}
		}
		if cand != nil {
			pkt, err := g.ex0.extractPacketFromModel(cand, goal.Key)
			if err != nil {
				return err
			}
			decided[i] = true
			outcomes[i] = goalOutcome{pkt: pkt, how: byWitness}
			claim(i, cand, pkt)
			continue
		}
		// Fallback ladder bottom: the solver (slice-restricted unless
		// disabled). Its model seeds future witnesses, so each genuinely
		// new pipeline context costs one check and then amortizes across
		// the rest of its table.
		solve := g.ex0.SolveGoal
		if !g.gopts.DisableSlicing {
			solve = g.ex0.SolveGoalSliced
		}
		pkt, sat, err := solve(goal)
		if err != nil {
			return err
		}
		decided[i] = true
		if !sat {
			outcomes[i] = goalOutcome{how: bySolve}
			continue
		}
		outcomes[i] = goalOutcome{pkt: pkt, how: bySolve}
		model := g.ex0.solver.Model()
		if len(w.seeds[tname]) < maxWitnessSeeds {
			w.seeds[tname] = append(w.seeds[tname], model)
		}
		claim(i, model, pkt)
	}
	return nil
}
