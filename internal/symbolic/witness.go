// Solver-free witness synthesis (ROADMAP item 3): most table goals on
// realistic entry sets are pairwise-disjoint exact/LPM/ternary matches,
// so model-reuse pruning can never absorb them — each would pay a full
// SMT check. But their reachability reduces to key arithmetic: a packet
// hits entry E of table T iff its key values satisfy E's match while
// escaping every higher-precedence entry. That predicate is computed
// here as a per-table BDD over the key bits (handling correlated and
// shadowed prefixes exactly, not just the common disjoint case), a
// candidate key assignment is read off deterministically (MinSat), and
// the candidate is grafted onto a previously-found seed model. The
// grafted model is confirmed end-to-end by concrete evaluation of the
// goal's full path condition plus every solver assertion (smt.EvalBool
// over the hash-consed DAG) — a confirmed witness is a genuine model of
// the formula, so the goal's SMT check is skipped entirely. Any failure
// falls back to the solver, so verdicts are identical to the solver path
// by construction: the witness layer only ever skips work, never
// changes an answer.
//
// The pre-pass runs sequentially on the shard-0 executor before
// sharding, so its results are independent of the worker count and the
// simulation engine, preserving the generator's determinism contract.
package symbolic

import (
	"switchv/internal/bdd"
	"switchv/internal/p4/ir"
	"switchv/internal/p4/pdpi"
	"switchv/internal/p4/value"
	"switchv/internal/smt"
)

// maxWitnessSeeds bounds each table's seed-model pool. Seeds capture
// distinct pipeline contexts (VRF assignments, parse states); a handful
// per table suffices because each solver fallback on that table
// contributes its model as a fresh seed. Pools are per table so an
// early table's context diversity cannot starve a later one (an IPv6
// route goal needs an IPv6-parsed seed, which no IPv4 goal provides).
const maxWitnessSeeds = 16

// keySlot is one key field of a witnessed table: its bit range in the
// table's BDD, the symbolic expression it is matched against, and
// whether a candidate model can set it directly.
type keySlot struct {
	key   ir.KeyField
	off   int       // first BDD variable (MSB) of this key
	state *smt.Term // symbolic key expression at first application
	// patchable keys are matched against their raw input variable (no
	// pipeline rewrite before the table) and are not validity bits, so a
	// candidate may assign them freely; the rest are pinned to a seed
	// model's value.
	patchable bool
}

// tableWitness is the per-table BDD precedence model: base[goalKey] is
// the exact condition over the key bits under which that entry (or the
// default action) is selected — its match, minus every higher-precedence
// match, mirroring applyTable's guard construction entry for entry.
type tableWitness struct {
	bld    *bdd.Builder
	slots  []keySlot
	global bdd.Node // range constraints (ingress port < MaxPort)
	base   map[string]bdd.Node
}

// newTableWitness builds the witness model for a table, or nil when the
// table is not witnessable (never applied, or no patchable key — its
// selection then depends entirely on upstream pipeline state, which key
// arithmetic cannot steer).
func newTableWitness(ex *Executor, t *ir.Table) *tableWitness {
	ks, ok := ex.keyState[t.Name]
	if !ok {
		return nil
	}
	slots := make([]keySlot, len(t.Keys))
	total, anyPatch := 0, false
	for i, k := range t.Keys {
		patchable := ks[i] == ex.inputs[k.Field.ID] && !k.Field.IsValidity
		slots[i] = keySlot{key: k, off: total, state: ks[i], patchable: patchable}
		total += k.Field.Width
		anyPatch = anyPatch || patchable
	}
	if !anyPatch {
		return nil
	}
	bld := bdd.New(total)
	global := bdd.True
	for _, s := range slots {
		if s.patchable && s.key.Field.Name == ir.FieldIngressPort {
			bits := make([]int, s.key.Field.Width)
			for j := range bits {
				bits[j] = s.off + j
			}
			global = bld.And(global, bld.LtConst(bits, uint64(ex.opts.MaxPort)))
		}
	}
	tw := &tableWitness{bld: bld, slots: slots, global: global, base: map[string]bdd.Node{}}
	notHigher := bdd.True
	for _, e := range orderEntries(t, ex.store) {
		m := tw.matchNode(e)
		tw.base[TraceKeyEntry(t.Name, e)] = bld.And(notHigher, m)
		notHigher = bld.And(notHigher, bld.Not(m))
	}
	tw.base[TraceKeyDefault(t.Name)] = notHigher
	return tw
}

// matchNode lowers an entry's match to the key-bit BDD, mirroring
// Executor.matchCond: exact/optional pin every bit, LPM pins the top
// PrefixLen bits, ternary pins the mask's bits, absent matches are
// unconstrained, and an unknown key never matches.
func (tw *tableWitness) matchNode(e *pdpi.Entry) bdd.Node {
	cond := bdd.True
	for i := range e.Matches {
		m := &e.Matches[i]
		var slot *keySlot
		for j := range tw.slots {
			if tw.slots[j].key.Name == m.Key {
				slot = &tw.slots[j]
				break
			}
		}
		if slot == nil {
			return bdd.False
		}
		w := slot.key.Field.Width
		switch m.Kind {
		case ir.MatchExact, ir.MatchOptional:
			cond = tw.bld.And(cond, tw.eqBits(slot.off, w, m.Value, value.PrefixMask(w, w)))
		case ir.MatchLPM:
			mask := value.PrefixMask(m.PrefixLen, w)
			cond = tw.bld.And(cond, tw.eqBits(slot.off, w, m.Value.And(mask), mask))
		case ir.MatchTernary:
			cond = tw.bld.And(cond, tw.eqBits(slot.off, w, m.Value.And(m.Mask), m.Mask))
		}
	}
	return cond
}

// eqBits constrains the masked bits of the key at off (width w, BDD
// variables MSB-first) to the value's bits.
func (tw *tableWitness) eqBits(off, w int, v, mask value.V) bdd.Node {
	cond := bdd.True
	for j := 0; j < w; j++ { // j indexes value bits, LSB first
		if !mask.Bit(j) {
			continue
		}
		vi := off + (w - 1 - j)
		if v.Bit(j) {
			cond = tw.bld.And(cond, tw.bld.Var(vi))
		} else {
			cond = tw.bld.And(cond, tw.bld.NVar(vi))
		}
	}
	return cond
}

// pinSeed conjoins the constraint that every pinned (non-patchable) key
// equals its value under the seed model, evaluated through the key's
// symbolic state expression. False means this seed's pipeline context
// cannot select the goal entry, whatever the patchable keys.
func (tw *tableWitness) pinSeed(seed *smt.Model, node bdd.Node) bdd.Node {
	for i := range tw.slots {
		s := &tw.slots[i]
		if s.patchable {
			continue
		}
		w := s.key.Field.Width
		v := smt.Eval(seed, s.state).WithWidth(w)
		node = tw.bld.And(node, tw.eqBits(s.off, w, v, value.PrefixMask(w, w)))
		if node == bdd.False {
			return bdd.False
		}
	}
	return node
}

// synth reads the deterministic minimum satisfying key assignment off
// the pinned BDD and grafts the patchable key values onto the seed,
// returning the candidate model (nil when the pinned BDD is UNSAT).
// Every selector-choice variable is pinned to member 0 — always a valid
// choice — because the seed only constrained the choices of entries it
// actually fired, and the graft may fire different ones.
func (tw *tableWitness) synth(ex *Executor, seed *smt.Model, node bdd.Node) *smt.Model {
	assign, ok := tw.bld.MinSat(tw.pinSeed(seed, node))
	if !ok {
		return nil
	}
	patch := map[*smt.Term]value.V{}
	for _, c := range ex.choiceVars {
		patch[c] = value.Zero(c.Width())
	}
	for i := range tw.slots {
		s := &tw.slots[i]
		if !s.patchable {
			continue
		}
		w := s.key.Field.Width
		v := value.Zero(w)
		for j := 0; j < w; j++ {
			if assign[s.off+(w-1-j)] {
				v = v.SetBit(j, true)
			}
		}
		patch[ex.inputs[s.key.Field.ID]] = v
	}
	return seed.WithVars(patch)
}

// witnessPass drives the solver-free pre-pass over the goal universe.
type witnessPass struct {
	ex     *Executor
	tables map[string]*tableWitness
	seeds  map[string][]*smt.Model // per-table seed pools
}

// confirm checks that a candidate model genuinely models the executor's
// formula and the goal condition: the goal's full path condition first
// (cheapest to fail), then every assertion the executor ever made
// (parser axioms, selector constraints). A confirmed candidate is
// indistinguishable from a solver model.
func (w *witnessPass) confirm(cand *smt.Model, cond *smt.Term) bool {
	if !smt.EvalBool(cand, cond) {
		return false
	}
	for _, a := range w.ex.solver.AssertedTerms() {
		if !smt.EvalBool(cand, a) {
			return false
		}
	}
	return true
}

// witnessPrepass decides table goals without the solver where possible,
// running sequentially on the shard-0 executor. For each undecided goal
// on a witnessable table it tries, in order: (1) BDD unsatisfiability of
// the goal's key condition (unreachable, zero checks); (2) a synthesized
// candidate per seed, confirmed by concrete evaluation (covered, zero
// checks); (3) the solver (one check — and its SAT model both prunes
// remaining goals and joins the seed pool, teaching the witness layer a
// new pipeline context). Confirmed witnesses prune remaining goals
// exactly like solver models. Decided goals are recorded in
// outcomes/decided in place.
func (g *Generator) witnessPrepass(decided []bool, outcomes []goalOutcome) error {
	w := &witnessPass{ex: g.ex0, tables: map[string]*tableWitness{}, seeds: map[string][]*smt.Model{}}
	claim := func(self int, m *smt.Model, pkt *TestPacket) {
		for j := range g.goals {
			if decided[j] || j == self {
				continue
			}
			if smt.EvalBool(m, g.goals[j].Cond) {
				decided[j] = true
				outcomes[j] = goalOutcome{
					pkt: &TestPacket{GoalKey: g.goals[j].Key, Port: pkt.Port, Data: pkt.Data},
					how: byPrune,
				}
			}
		}
	}
	for i := range g.goals {
		if decided[i] {
			continue
		}
		goal := g.goals[i]
		tname := goalTable(goal.Key)
		if tname == "" {
			continue
		}
		tw, seen := w.tables[tname]
		if !seen {
			if t, ok := g.prog.TableByName(tname); ok {
				tw = newTableWitness(g.ex0, t)
			}
			w.tables[tname] = tw
		}
		if tw == nil {
			continue
		}
		node, ok := tw.base[goal.Key]
		if !ok {
			continue
		}
		node = tw.bld.And(node, tw.global)
		if node == bdd.False {
			// No key assignment selects this entry (fully shadowed by
			// higher-precedence entries): unreachable without a check.
			decided[i] = true
			outcomes[i] = goalOutcome{how: byWitnessUnsat}
			continue
		}
		var cand *smt.Model
		for _, seed := range w.seeds[tname] {
			if m := tw.synth(g.ex0, seed, node); m != nil && w.confirm(m, goal.Cond) {
				cand = m
				break
			}
		}
		if cand != nil {
			pkt, err := g.ex0.extractPacketFromModel(cand, goal.Key)
			if err != nil {
				return err
			}
			decided[i] = true
			outcomes[i] = goalOutcome{pkt: pkt, how: byWitness}
			claim(i, cand, pkt)
			continue
		}
		// Fallback ladder bottom: the solver. Its model seeds future
		// witnesses, so each genuinely new pipeline context costs one
		// check and then amortizes across the rest of its table.
		pkt, sat, err := g.ex0.SolveGoal(goal)
		if err != nil {
			return err
		}
		decided[i] = true
		if !sat {
			outcomes[i] = goalOutcome{how: bySolve}
			continue
		}
		outcomes[i] = goalOutcome{pkt: pkt, how: bySolve}
		model := g.ex0.solver.Model()
		if len(w.seeds[tname]) < maxWitnessSeeds {
			w.seeds[tname] = append(w.seeds[tname], model)
		}
		claim(i, model, pkt)
	}
	return nil
}
