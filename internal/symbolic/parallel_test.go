package symbolic

import (
	"fmt"
	"strings"
	"testing"

	"switchv/internal/bmv2"
	"switchv/internal/p4/pdpi"
	"switchv/internal/testutil"
	"switchv/models"
)

func genFixture(t *testing.T) (*pdpi.Store, func(GenOptions) ([]TestPacket, Report)) {
	t.Helper()
	prog := models.Middleblock()
	store := pdpi.NewStore()
	testutil.RoutingFixture(prog, store)
	return store, func(gopts GenOptions) ([]TestPacket, Report) {
		t.Helper()
		pkts, rep, err := GeneratePacketsParallel(prog, store, Options{}, gopts)
		if err != nil {
			t.Fatal(err)
		}
		return pkts, rep
	}
}

func renderPackets(pkts []TestPacket) string {
	var sb strings.Builder
	for _, p := range pkts {
		fmt.Fprintf(&sb, "%s|%d|%x\n", p.GoalKey, p.Port, p.Data)
	}
	return sb.String()
}

// TestGeneratorWorkerCountInvariant is the determinism contract: the
// packet set AND the report must be bit-identical for any worker count.
func TestGeneratorWorkerCountInvariant(t *testing.T) {
	_, run := genFixture(t)
	base := GenOptions{Mode: CoverBranches, Enriched: true}
	p1, r1 := run(base)
	for _, workers := range []int{2, 4, 13} {
		opts := base
		opts.Workers = workers
		pn, rn := run(opts)
		if renderPackets(pn) != renderPackets(p1) {
			t.Fatalf("workers=%d: packet set differs from workers=1", workers)
		}
		if rn != r1 {
			t.Fatalf("workers=%d: report %+v differs from workers=1 %+v", workers, rn, r1)
		}
	}
}

// TestGeneratorMatchesSequential checks that the parallel engine covers
// the same goal universe with the same verdicts as the sequential
// baseline: identical covered/unreachable goal keys (the packets may
// legitimately differ — pruning reuses models).
func TestGeneratorMatchesSequential(t *testing.T) {
	prog := models.Middleblock()
	store := pdpi.NewStore()
	testutil.RoutingFixture(prog, store)
	ex, err := New(prog, store, Options{})
	if err != nil {
		t.Fatal(err)
	}
	seqPkts, seqRep, err := ex.GeneratePackets(CoverBranches)
	if err != nil {
		t.Fatal(err)
	}
	parPkts, parRep, err := GeneratePacketsParallel(prog, store, Options{}, GenOptions{Mode: CoverBranches, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if parRep.Goals != seqRep.Goals || parRep.Covered != seqRep.Covered || parRep.Unreachable != seqRep.Unreachable {
		t.Fatalf("verdicts differ: parallel %+v vs sequential %+v", parRep, seqRep)
	}
	covered := func(pkts []TestPacket) map[string]bool {
		m := map[string]bool{}
		for _, p := range pkts {
			m[p.GoalKey] = true
		}
		return m
	}
	seqSet, parSet := covered(seqPkts), covered(parPkts)
	for k := range seqSet {
		if !parSet[k] {
			t.Errorf("goal %s covered sequentially but not in parallel", k)
		}
	}
	for k := range parSet {
		if !seqSet[k] {
			t.Errorf("goal %s covered in parallel but not sequentially", k)
		}
	}
	if parRep.SMTChecks >= seqRep.SMTChecks {
		t.Errorf("pruning saved nothing: parallel %d checks vs sequential %d", parRep.SMTChecks, seqRep.SMTChecks)
	}
}

// TestPrunedPacketsSatisfyGoals replays every generated packet —
// including the pruned ones that reuse another goal's model — through
// the reference simulator and checks the goal's construct is hit.
func TestPrunedPacketsSatisfyGoals(t *testing.T) {
	prog := models.Middleblock()
	store := pdpi.NewStore()
	testutil.RoutingFixture(prog, store)
	pkts, rep, err := GeneratePacketsParallel(prog, store, Options{}, GenOptions{Mode: CoverEntries, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Pruned == 0 {
		t.Fatalf("expected some pruned goals on the fixture: %+v", rep)
	}
	// A goal behind a selector table (WCMP) is hit by the right member
	// choice; the packet is valid if ANY behavior in the simulator's
	// valid set hits it — the same membership judgment the harness uses.
	for _, pkt := range pkts {
		sim, err := bmv2.New(prog, store)
		if err != nil {
			t.Fatal(err)
		}
		behaviors, err := sim.BehaviorSet(bmv2.Input{Port: pkt.Port, Packet: pkt.Data}, 32)
		if err != nil {
			t.Fatalf("goal %s: %v", pkt.GoalKey, err)
		}
		hit := false
		for _, out := range behaviors {
			if hitsGoal(out, pkt.GoalKey) {
				hit = true
				break
			}
		}
		if !hit {
			t.Errorf("goal %s hit by no valid behavior (%d behaviors)", pkt.GoalKey, len(behaviors))
		}
	}
}

// TestGeneratorPerGoalCache checks the incremental-caching contract: a
// repeat run is served entirely from the cache, and churn in a
// later-applied table re-solves only the goals it can reach.
func TestGeneratorPerGoalCache(t *testing.T) {
	prog := models.Middleblock()
	store := pdpi.NewStore()
	testutil.RoutingFixture(prog, store)
	cache := NewCache()
	gopts := GenOptions{Mode: CoverBranches, Enriched: true, Cache: cache, Workers: 2}

	cold, coldRep, err := GeneratePacketsParallel(prog, store, Options{}, gopts)
	if err != nil {
		t.Fatal(err)
	}
	if coldRep.Cached != 0 {
		t.Fatalf("cold run hit the cache: %+v", coldRep)
	}

	warm, warmRep, err := GeneratePacketsParallel(prog, store, Options{}, gopts)
	if err != nil {
		t.Fatal(err)
	}
	if warmRep.Cached != warmRep.Goals || warmRep.SMTChecks != 0 {
		t.Fatalf("warm run not fully cached: %+v", warmRep)
	}
	if renderPackets(warm) != renderPackets(cold) {
		t.Fatal("warm packets differ from cold packets")
	}

	// Churn the last-applied table (the ACL stage): goals on tables
	// applied strictly before it keep their cache entries.
	acl, ok := prog.TableByName("acl_ingress_table")
	if !ok {
		t.Fatal("no acl_ingress_table")
	}
	for _, e := range store.Entries(acl.Name) {
		if err := store.Delete(e); err != nil {
			t.Fatal(err)
		}
		break
	}
	churnRep := Report{}
	if _, churnRep, err = GeneratePacketsParallel(prog, store, Options{}, gopts); err != nil {
		t.Fatal(err)
	}
	if churnRep.Cached == 0 {
		t.Fatalf("later-table churn invalidated every goal: %+v", churnRep)
	}
	if churnRep.Cached == churnRep.Goals {
		t.Fatalf("later-table churn invalidated nothing: %+v", churnRep)
	}
}
