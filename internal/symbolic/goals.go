package symbolic

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"
	"sync"

	"switchv/internal/p4/ir"
	"switchv/internal/p4/pdpi"
	"switchv/internal/p4/value"
	"switchv/internal/sat"
	"switchv/internal/smt"
)

// CoverageMode selects which coverage goals to generate.
type CoverageMode int

// Coverage modes (§5 "Coverage Constraints").
const (
	// CoverEntries poses one goal per installed entry plus one per table
	// default action: the branch-coverage criterion used in the paper's
	// evaluation ("hit every reachable input table entry at least once").
	CoverEntries CoverageMode = iota
	// CoverBranches additionally covers both sides of every conditional.
	CoverBranches
)

// Goal is a coverage assertion over X, Y and T.
type Goal struct {
	Key  string
	Cond *smt.Term
}

// Goals enumerates the coverage goals for a mode.
func (ex *Executor) Goals(mode CoverageMode) []Goal {
	var goals []Goal
	for _, key := range ex.keys {
		isBranch := strings.HasPrefix(key, "branch:")
		if isBranch && mode != CoverBranches {
			continue
		}
		goals = append(goals, Goal{Key: key, Cond: ex.trace[key]})
	}
	return goals
}

// TestPacket is a synthesized input packet for one coverage goal.
type TestPacket struct {
	GoalKey string
	Port    uint16
	Data    []byte
}

// SolveGoal asks the solver for a packet satisfying the goal. It returns
// (nil, false, nil) when the goal is unreachable (UNSAT).
func (ex *Executor) SolveGoal(g Goal) (*TestPacket, bool, error) {
	switch ex.solver.CheckAssuming(g.Cond) {
	case sat.Unsat:
		return nil, false, nil
	case sat.Sat:
	default:
		return nil, false, fmt.Errorf("symbolic: solver returned unknown for %s", g.Key)
	}
	pkt, err := ex.extractPacket(g.Key)
	if err != nil {
		return nil, false, err
	}
	return pkt, true, nil
}

// extractPacket reads the input variables' model values and deparses them
// into packet bytes.
func (ex *Executor) extractPacket(goalKey string) (*TestPacket, error) {
	fields := make([]value.V, len(ex.prog.Fields))
	for i, f := range ex.prog.Fields {
		fields[i] = ex.solver.ValueBV(ex.inputs[i]).WithWidth(f.Width)
	}
	data, err := bmv2DeparseFields(ex.prog, fields, []byte("switchv-test"))
	if err != nil {
		return nil, fmt.Errorf("symbolic: deparsing model for %s: %w", goalKey, err)
	}
	port := uint16(0)
	if f, ok := ex.prog.FieldByName(ir.FieldIngressPort); ok {
		port = uint16(fields[f.ID].Uint64())
	}
	return &TestPacket{GoalKey: goalKey, Port: port, Data: data}, nil
}

// Report summarizes a generation run.
type Report struct {
	Goals       int
	Covered     int
	Unreachable int
	// SATStats aggregates the decision-procedure work.
	SATStats sat.Stats
	// Terms and Clauses measure formula size.
	Terms   int
	Clauses int
}

// GeneratePackets solves every goal of the mode and returns the packets
// for the reachable ones.
func (ex *Executor) GeneratePackets(mode CoverageMode) ([]TestPacket, Report, error) {
	goals := ex.Goals(mode)
	var packets []TestPacket
	rep := Report{Goals: len(goals)}
	for _, g := range goals {
		pkt, ok, err := ex.SolveGoal(g)
		if err != nil {
			return nil, rep, err
		}
		if !ok {
			rep.Unreachable++
			continue
		}
		rep.Covered++
		packets = append(packets, *pkt)
	}
	rep.SATStats = ex.solver.Stats()
	rep.Terms = ex.b.NumTerms()
	rep.Clauses = ex.solver.NumClauses
	return packets, rep, nil
}

// Cache memoizes generated packets keyed by a fingerprint of the model,
// the installed entries, and the coverage mode (§6.3 "Caching"): when the
// specification and entries are unchanged, the expensive SMT generation
// stage is skipped entirely.
type Cache struct {
	mu      sync.Mutex
	packets map[string][]TestPacket
	hits    int
	misses  int
}

// NewCache returns an empty cache.
func NewCache() *Cache {
	return &Cache{packets: map[string][]TestPacket{}}
}

// Fingerprint computes the cache key.
func Fingerprint(prog *ir.Program, entries []*pdpi.Entry, mode CoverageMode) string {
	h := sha256.New()
	fmt.Fprintf(h, "model:%s;mode:%d;", prog.Name, mode)
	// Entries in deterministic order.
	keys := make([]string, 0, len(entries))
	render := map[string]string{}
	for _, e := range entries {
		k := e.Key()
		keys = append(keys, k)
		render[k] = e.String()
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(h, "%s;", render[k])
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Hits and Misses report cache effectiveness.
func (c *Cache) Hits() int   { c.mu.Lock(); defer c.mu.Unlock(); return c.hits }
func (c *Cache) Misses() int { c.mu.Lock(); defer c.mu.Unlock(); return c.misses }

// Get returns the cached packets for a fingerprint.
func (c *Cache) Get(fp string) ([]TestPacket, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	pkts, ok := c.packets[fp]
	if ok {
		c.hits++
	} else {
		c.misses++
	}
	return pkts, ok
}

// Put stores packets under a fingerprint.
func (c *Cache) Put(fp string, pkts []TestPacket) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.packets[fp] = append([]TestPacket(nil), pkts...)
}

// EnrichedGoals returns the "test engineer" goal set (§5 "Coverage
// Constraints" middle ground): targeted assertions over X and Y beyond
// structural coverage — each disposition, forwarding with interesting
// header values (nonzero DSCP, broadcast destination, TTL at the trap
// boundary), and a controller copy.
func (ex *Executor) EnrichedGoals() []Goal {
	b := ex.b
	goals := []Goal{
		{Key: "enriched:punt", Cond: ex.PuntCond()},
		{Key: "enriched:drop", Cond: ex.DropCond()},
		{Key: "enriched:forward", Cond: ex.ForwardCond()},
	}
	field := func(name string) (*smt.Term, bool) {
		f, ok := ex.prog.FieldByName(name)
		if !ok {
			return nil, false
		}
		return ex.inputs[f.ID], true
	}
	prefix := ""
	if len(ex.prog.HeaderInstances) > 0 {
		path := ex.prog.HeaderInstances[0].Path
		for i := 0; i < len(path); i++ {
			if path[i] == '.' {
				prefix = path[:i]
				break
			}
		}
	}
	if dscp, ok := field(prefix + ".ipv4.dscp"); ok {
		goals = append(goals, Goal{
			Key:  "enriched:forward-dscp-nonzero",
			Cond: b.And(ex.ForwardCond(), b.Ne(dscp, b.ConstUint(0, dscp.Width()))),
		})
	}
	if dst, ok := field(prefix + ".ipv4.dst_addr"); ok {
		cond := b.And(ex.ForwardCond(), b.Eq(dst, b.ConstUint(0xffffffff, 32)))
		// Tunnel-capable models could satisfy this with a GRE packet whose
		// broadcast outer header is decapsulated away; require a plain
		// packet so the L3 lookup actually sees the broadcast address.
		if gre, ok := field(prefix + ".gre.$valid"); ok {
			cond = b.And(cond, b.Eq(gre, b.ConstUint(0, 1)))
		}
		goals = append(goals, Goal{Key: "enriched:forward-broadcast", Cond: cond})
	}
	if ttl, ok := field(prefix + ".ipv4.ttl"); ok {
		goals = append(goals, Goal{
			Key:  "enriched:forward-ttl2",
			Cond: b.And(ex.ForwardCond(), b.Eq(ttl, b.ConstUint(2, ttl.Width()))),
		})
	}
	if copyF, ok := ex.prog.FieldByName(ir.FieldCopy); ok {
		goals = append(goals, Goal{
			Key:  "enriched:copy-to-cpu",
			Cond: b.Eq(ex.outputs[copyF.ID], b.ConstUint(1, 1)),
		})
	}
	return goals
}
