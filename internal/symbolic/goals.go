package symbolic

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"
	"sync"

	"switchv/internal/p4/dataflow"
	"switchv/internal/p4/ir"
	"switchv/internal/p4/pdpi"
	"switchv/internal/p4/value"
	"switchv/internal/sat"
	"switchv/internal/smt"
)

// CoverageMode selects which coverage goals to generate.
type CoverageMode int

// Coverage modes (§5 "Coverage Constraints").
const (
	// CoverEntries poses one goal per installed entry plus one per table
	// default action: the branch-coverage criterion used in the paper's
	// evaluation ("hit every reachable input table entry at least once").
	CoverEntries CoverageMode = iota
	// CoverBranches additionally covers both sides of every conditional.
	CoverBranches
)

// Goal is a coverage assertion over X, Y and T.
type Goal struct {
	Key  string
	Cond *smt.Term
}

// Goals enumerates the coverage goals for a mode.
func (ex *Executor) Goals(mode CoverageMode) []Goal {
	var goals []Goal
	for _, key := range ex.keys {
		isBranch := strings.HasPrefix(key, "branch:")
		if isBranch && mode != CoverBranches {
			continue
		}
		goals = append(goals, Goal{Key: key, Cond: ex.trace[key]})
	}
	return goals
}

// TestPacket is a synthesized input packet for one coverage goal.
type TestPacket struct {
	GoalKey string
	Port    uint16
	Data    []byte
}

// SolveGoal asks the solver for a packet satisfying the goal. It returns
// (nil, false, nil) when the goal is unreachable (UNSAT).
func (ex *Executor) SolveGoal(g Goal) (*TestPacket, bool, error) {
	switch ex.solver.CheckAssuming(g.Cond) {
	case sat.Unsat:
		return nil, false, nil
	case sat.Sat:
	default:
		return nil, false, fmt.Errorf("symbolic: solver returned unknown for %s", g.Key)
	}
	pkt, err := ex.extractPacket(g.Key)
	if err != nil {
		return nil, false, err
	}
	return pkt, true, nil
}

// coneSeed returns the slice seed for a goal: the input variables of
// the goal table's dataflow cone of influence. Branch and enriched
// goals return nil — their conditions carry their own variable support,
// which CheckSliced seeds the closure with anyway.
func (ex *Executor) coneSeed(goalKey string) []*smt.Term {
	table := goalTable(goalKey)
	if table == "" {
		return nil
	}
	cone := dataflow.Cached(ex.prog).Cone(table)
	if cone == nil {
		return nil
	}
	ids := make([]int, 0, len(cone.Fields))
	for id := range cone.Fields {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	seed := make([]*smt.Term, len(ids))
	for i, id := range ids {
		seed[i] = ex.inputs[id]
	}
	return seed
}

// SolveGoalSliced is SolveGoal through the slice-restricted solver
// path: only the assertions inside the goal's cone-of-influence closure
// are activated (and CNF'd). Verdicts are identical to SolveGoal by
// construction; only the synthesized packet may differ, since the model
// is completed from the canonical background outside the slice.
func (ex *Executor) SolveGoalSliced(g Goal) (*TestPacket, bool, error) {
	switch ex.solver.CheckSliced(ex.coneSeed(g.Key), g.Cond) {
	case sat.Unsat:
		return nil, false, nil
	case sat.Sat:
	default:
		return nil, false, fmt.Errorf("symbolic: solver returned unknown for %s", g.Key)
	}
	pkt, err := ex.extractPacket(g.Key)
	if err != nil {
		return nil, false, err
	}
	return pkt, true, nil
}

// extractPacket reads the input variables' model values and deparses them
// into packet bytes.
func (ex *Executor) extractPacket(goalKey string) (*TestPacket, error) {
	fields := make([]value.V, len(ex.prog.Fields))
	for i, f := range ex.prog.Fields {
		fields[i] = ex.solver.ValueBV(ex.inputs[i]).WithWidth(f.Width)
	}
	data, err := bmv2DeparseFields(ex.prog, fields, []byte("switchv-test"))
	if err != nil {
		return nil, fmt.Errorf("symbolic: deparsing model for %s: %w", goalKey, err)
	}
	port := uint16(0)
	if f, ok := ex.prog.FieldByName(ir.FieldIngressPort); ok {
		port = uint16(fields[f.ID].Uint64())
	}
	return &TestPacket{GoalKey: goalKey, Port: port, Data: data}, nil
}

// extractPacketFromModel deparses a concrete model of the input
// variables into packet bytes, without touching the solver. The witness
// path uses it: a synthesized candidate model confirmed by concrete
// evaluation yields its packet here, spending no SMT check.
func (ex *Executor) extractPacketFromModel(m *smt.Model, goalKey string) (*TestPacket, error) {
	fields := make([]value.V, len(ex.prog.Fields))
	for i, f := range ex.prog.Fields {
		fields[i] = m.Var(ex.inputs[i]).WithWidth(f.Width)
	}
	data, err := bmv2DeparseFields(ex.prog, fields, []byte("switchv-test"))
	if err != nil {
		return nil, fmt.Errorf("symbolic: deparsing witness for %s: %w", goalKey, err)
	}
	port := uint16(0)
	if f, ok := ex.prog.FieldByName(ir.FieldIngressPort); ok {
		port = uint16(fields[f.ID].Uint64())
	}
	return &TestPacket{GoalKey: goalKey, Port: port, Data: data}, nil
}

// Report summarizes a generation run.
type Report struct {
	Goals       int
	Covered     int
	Unreachable int
	// Solved, Pruned, Cached and Precheck classify how each goal was
	// decided: by its own SMT check, by reusing an earlier goal's SAT
	// model (the solve-avoiding path), from the per-goal cache, or by
	// the static preflight's unreachability proof (no solver call at
	// all).
	Solved   int
	Pruned   int
	Cached   int
	Precheck int
	// Witnessed counts goals decided by a solver-free synthesized
	// witness: a candidate packet built by prefix arithmetic over the
	// goal's key constraints and confirmed by concrete evaluation of the
	// full path condition (no SMT check). WitnessUnsat counts goals the
	// witness layer proved unreachable by key arithmetic alone.
	Witnessed    int
	WitnessUnsat int
	// SMTChecks counts the CheckAssuming calls actually issued; the gap
	// to Goals is the work pruning and caching avoided.
	SMTChecks int
	// Shards is the logical goal-shard count of the parallel path
	// (0 for the sequential path). Results depend on it; worker count
	// never changes them.
	Shards int
	// SATStats aggregates the decision-procedure work, summed across
	// every shard solver of a parallel run.
	SATStats sat.Stats
	// Terms and Clauses measure formula size, and Vars the SAT variables
	// allocated — summed across shard solvers.
	Terms   int
	Clauses int
	Vars    int
	// CNFReuse counts blast-memo hits summed across shard solvers: CNF
	// encodings requested again and served from the memo instead of
	// being rebuilt — the shared-program-prefix reuse of the
	// incremental solving path.
	CNFReuse int
	// SlicedAsserts counts pipeline assertions excluded from sliced
	// per-goal checks (summed per check across shard solvers), and
	// SlicedBits the input bits those checks left outside their
	// cone-of-influence slice — work never CNF'd or constrained.
	SlicedAsserts int
	SlicedBits    int
}

// GeneratePackets solves every goal of the mode sequentially, one SMT
// check per goal, and returns the packets for the reachable ones. This
// is the paper's baseline; see Generator for the parallel,
// solve-avoiding engine.
func (ex *Executor) GeneratePackets(mode CoverageMode) ([]TestPacket, Report, error) {
	goals := ex.Goals(mode)
	var packets []TestPacket
	rep := Report{Goals: len(goals)}
	startChecks := ex.solver.NumChecks
	for _, g := range goals {
		pkt, ok, err := ex.SolveGoal(g)
		if err != nil {
			return nil, rep, err
		}
		if !ok {
			rep.Unreachable++
			continue
		}
		rep.Covered++
		packets = append(packets, *pkt)
	}
	rep.Solved = rep.Covered + rep.Unreachable
	rep.SMTChecks = ex.solver.NumChecks - startChecks
	rep.SATStats = ex.solver.Stats()
	rep.Terms = ex.b.NumTerms()
	rep.Clauses = ex.solver.NumClauses
	rep.Vars = ex.solver.NumVars()
	rep.CNFReuse = ex.solver.CNFReuse
	return packets, rep, nil
}

// DefaultCacheCap bounds the per-goal cache (§6.3 "Caching"). At one
// entry per goal it comfortably holds several campaigns of the paper's
// largest instance while keeping memory bounded under entry churn.
const DefaultCacheCap = 8192

// Cache memoizes the per-goal generation outcome — a synthesized packet
// or an unreachability verdict — keyed by GoalFingerprint (§6.3
// "Caching"). Keys cover only the entries that can influence the goal's
// guard, so a small entry delta re-solves just the affected goals
// instead of invalidating the whole campaign. Eviction is LRU with a
// fixed capacity.
type Cache struct {
	mu     sync.Mutex
	cap    int
	ll     *list.List // front = most recently used
	items  map[string]*list.Element
	hits   int
	misses int
}

type cacheItem struct {
	fp  string
	pkt *TestPacket // nil records an unreachable goal
}

// NewCache returns an empty cache with the default capacity.
func NewCache() *Cache { return NewCacheCap(DefaultCacheCap) }

// NewCacheCap returns an empty cache holding at most n goal outcomes.
func NewCacheCap(n int) *Cache {
	if n < 1 {
		n = 1
	}
	return &Cache{cap: n, ll: list.New(), items: map[string]*list.Element{}}
}

// GoalFingerprint computes a goal's cache key from the model, the
// executor options, the goal identity, and the entries that can reach
// it (Executor.DepEntries).
func GoalFingerprint(prog *ir.Program, opts Options, goalKey string, deps []*pdpi.Entry) string {
	maxPort := opts.MaxPort
	if maxPort == 0 {
		maxPort = 32
	}
	h := sha256.New()
	fmt.Fprintf(h, "v2;model:%s;maxport:%d;goal:%s;", prog.Name, maxPort, goalKey)
	// Dependency entries in deterministic order.
	keys := make([]string, 0, len(deps))
	render := map[string]string{}
	for _, e := range deps {
		k := e.Key()
		keys = append(keys, k)
		render[k] = e.String()
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(h, "%s;", render[k])
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Hits and Misses report cache effectiveness.
func (c *Cache) Hits() int   { c.mu.Lock(); defer c.mu.Unlock(); return c.hits }
func (c *Cache) Misses() int { c.mu.Lock(); defer c.mu.Unlock(); return c.misses }

// Len returns the number of cached goal outcomes.
func (c *Cache) Len() int { c.mu.Lock(); defer c.mu.Unlock(); return c.ll.Len() }

// Cap returns the cache capacity.
func (c *Cache) Cap() int { return c.cap }

// GetGoal returns the cached outcome for a per-goal fingerprint:
// (packet, true) for a covered goal, (nil, true) for an unreachable
// one, (nil, false) on a miss. A hit refreshes the entry's LRU
// position.
func (c *Cache) GetGoal(fp string) (*TestPacket, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[fp]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*cacheItem).pkt, true
}

// PutGoal stores a goal outcome (pkt == nil records unreachability),
// evicting the least-recently-used entry when full.
func (c *Cache) PutGoal(fp string, pkt *TestPacket) {
	if pkt != nil {
		cp := *pkt
		pkt = &cp
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[fp]; ok {
		el.Value.(*cacheItem).pkt = pkt
		c.ll.MoveToFront(el)
		return
	}
	for c.ll.Len() >= c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheItem).fp)
	}
	c.items[fp] = c.ll.PushFront(&cacheItem{fp: fp, pkt: pkt})
}

// EnrichedGoals returns the "test engineer" goal set (§5 "Coverage
// Constraints" middle ground): targeted assertions over X and Y beyond
// structural coverage — each disposition, forwarding with interesting
// header values (nonzero DSCP, broadcast destination, TTL at the trap
// boundary), and a controller copy.
func (ex *Executor) EnrichedGoals() []Goal {
	b := ex.b
	goals := []Goal{
		{Key: "enriched:punt", Cond: ex.PuntCond()},
		{Key: "enriched:drop", Cond: ex.DropCond()},
		{Key: "enriched:forward", Cond: ex.ForwardCond()},
	}
	field := func(name string) (*smt.Term, bool) {
		f, ok := ex.prog.FieldByName(name)
		if !ok {
			return nil, false
		}
		return ex.inputs[f.ID], true
	}
	prefix := ""
	if len(ex.prog.HeaderInstances) > 0 {
		path := ex.prog.HeaderInstances[0].Path
		for i := 0; i < len(path); i++ {
			if path[i] == '.' {
				prefix = path[:i]
				break
			}
		}
	}
	if dscp, ok := field(prefix + ".ipv4.dscp"); ok {
		goals = append(goals, Goal{
			Key:  "enriched:forward-dscp-nonzero",
			Cond: b.And(ex.ForwardCond(), b.Ne(dscp, b.ConstUint(0, dscp.Width()))),
		})
	}
	if dst, ok := field(prefix + ".ipv4.dst_addr"); ok {
		cond := b.And(ex.ForwardCond(), b.Eq(dst, b.ConstUint(0xffffffff, 32)))
		// Tunnel-capable models could satisfy this with a GRE packet whose
		// broadcast outer header is decapsulated away; require a plain
		// packet so the L3 lookup actually sees the broadcast address.
		if gre, ok := field(prefix + ".gre.$valid"); ok {
			cond = b.And(cond, b.Eq(gre, b.ConstUint(0, 1)))
		}
		goals = append(goals, Goal{Key: "enriched:forward-broadcast", Cond: cond})
	}
	if ttl, ok := field(prefix + ".ipv4.ttl"); ok {
		goals = append(goals, Goal{
			Key:  "enriched:forward-ttl2",
			Cond: b.And(ex.ForwardCond(), b.Eq(ttl, b.ConstUint(2, ttl.Width()))),
		})
	}
	if copyF, ok := ex.prog.FieldByName(ir.FieldCopy); ok {
		goals = append(goals, Goal{
			Key:  "enriched:copy-to-cpu",
			Cond: b.Eq(ex.outputs[copyF.ID], b.ConstUint(1, 1)),
		})
	}
	return goals
}
