package bugdb

import (
	"strings"
	"testing"

	"switchv/internal/switchsim"
)

func TestTable1MatchesPaper(t *testing.T) {
	rows := Table1("PINS")
	want := map[string][3]int{ // bugs, fuzzer, symbolic
		switchsim.CompP4RT:      {47, 11, 36},
		switchsim.CompGNMI:      {2, 0, 2},
		switchsim.CompOrchAgent: {23, 12, 11},
		switchsim.CompSyncD:     {23, 10, 13},
		switchsim.CompLinux:     {9, 0, 9},
		switchsim.CompHardware:  {1, 1, 0},
		switchsim.CompToolchain: {2, 1, 1},
		switchsim.CompModel:     {15, 2, 13},
	}
	total := 0
	for _, r := range rows {
		w, ok := want[r.Component]
		if !ok {
			t.Errorf("unexpected component %q", r.Component)
			continue
		}
		if r.Bugs != w[0] || r.Fuzzer != w[1] || r.Symbolic != w[2] {
			t.Errorf("%s = %+v, want %v", r.Component, r, w)
		}
		total += r.Bugs
	}
	// The paper's Orchestration Agent row prints 24 with a 12/11 tool
	// split; only 23 is consistent with the printed 122 = 37 + 85 total,
	// so the catalog stores 23.
	if total != 122 {
		t.Errorf("PINS total = %d, want 122", total)
	}

	cer := Table1("Cerberus")
	cerTotal, cerFuzz, cerSym := 0, 0, 0
	for _, r := range cer {
		cerTotal += r.Bugs
		cerFuzz += r.Fuzzer
		cerSym += r.Symbolic
	}
	if cerTotal != 32 || cerFuzz != 18 || cerSym != 14 {
		t.Errorf("Cerberus = %d (%d/%d), want 32 (18/14)", cerTotal, cerFuzz, cerSym)
	}
}

func TestTable2Shape(t *testing.T) {
	pins := Table2("PINS")
	if len(pins) != 7 {
		t.Fatalf("rows = %d", len(pins))
	}
	// ~49% of PINS bugs not found by the trivial suite; 78% for Cerberus.
	if last := pins[len(pins)-1]; last.Percent < 45 || last.Percent > 53 {
		t.Errorf("PINS not-found = %.0f%%, want ~49%%", last.Percent)
	}
	cer := Table2("Cerberus")
	if last := cer[len(cer)-1]; last.Percent < 74 || last.Percent > 82 {
		t.Errorf("Cerberus not-found = %.0f%%, want ~78%%", last.Percent)
	}
	if pins[0].Test != "Set P4Info" || pins[0].Count != 22 {
		t.Errorf("row 0 = %+v", pins[0])
	}
}

func TestFigure7Headlines(t *testing.T) {
	within14, within5 := HeadlineStats()
	if within14 <= 0.5 {
		t.Errorf("within 14 days = %.2f, want majority", within14)
	}
	if within5 < 0.28 || within5 > 0.42 {
		t.Errorf("within 5 days = %.2f, want ~0.33", within5)
	}
	rows, unresolved := Figure7()
	if unresolved != 9 {
		t.Errorf("unresolved = %d, want 9", unresolved)
	}
	sum := 0
	for _, r := range rows {
		sum += r.Total
		if r.Total != r.Fuzzer+r.Symbolic {
			t.Errorf("bucket %s: %d != %d+%d", r.Label, r.Total, r.Fuzzer, r.Symbolic)
		}
	}
	if sum+unresolved != len(Bugs("PINS")) {
		t.Errorf("histogram sum %d + %d != %d", sum, unresolved, len(Bugs("PINS")))
	}
}

func TestDeterminism(t *testing.T) {
	a := Bugs("PINS")
	b := synthesize("PINS", pinsTable1, pinsTrivial, true)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("bug %d differs:\n%+v\n%+v", i, a[i], b[i])
		}
	}
}

func TestLiveFaultLinks(t *testing.T) {
	live := LiveFaults("PINS")
	if len(live) < 20 {
		t.Errorf("only %d PINS bugs link to live faults", len(live))
	}
	seen := map[switchsim.Fault]bool{}
	for _, b := range live {
		if seen[b.Fault] {
			t.Errorf("fault %s linked twice", b.Fault)
		}
		seen[b.Fault] = true
		if meta, ok := switchsim.Meta(b.Fault); !ok {
			t.Errorf("bug %s links unknown fault %s", b.ID, b.Fault)
		} else if meta.Component != b.Component {
			t.Errorf("bug %s: component %q, fault component %q", b.ID, b.Component, meta.Component)
		}
	}
	if len(LiveFaults("Cerberus")) == 0 {
		t.Error("no Cerberus live faults")
	}
}

func TestRenderers(t *testing.T) {
	out := RenderTable1("PINS", Table1("PINS"))
	for _, want := range []string{"P4Runtime Server", "Total", "p4-fuzzer"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 1 output missing %q:\n%s", want, out)
		}
	}
	out = RenderTable2()
	if !strings.Contains(out, "Not found by any test above") {
		t.Errorf("Table 2 output:\n%s", out)
	}
	out = RenderFigure7()
	if !strings.Contains(out, "9 bugs have not been resolved") {
		t.Errorf("Figure 7 output:\n%s", out)
	}
	if Bugs("nope") != nil {
		t.Error("Bugs(nope) returned data")
	}
	if len(Stacks()) != 2 {
		t.Error("Stacks")
	}
}
