package bugdb

import (
	"fmt"
	"strings"
)

// Table1Row is one row of the bugs-by-component table.
type Table1Row struct {
	Component string
	Bugs      int
	Fuzzer    int
	Symbolic  int
}

// Table1 aggregates the catalog by component, in the paper's row order.
func Table1(stack string) []Table1Row {
	var order []string
	seen := map[string]int{}
	var rows []Table1Row
	for _, b := range Bugs(stack) {
		i, ok := seen[b.Component]
		if !ok {
			i = len(rows)
			seen[b.Component] = i
			order = append(order, b.Component)
			rows = append(rows, Table1Row{Component: b.Component})
		}
		rows[i].Bugs++
		switch b.Tool {
		case "p4-fuzzer":
			rows[i].Fuzzer++
		case "p4-symbolic":
			rows[i].Symbolic++
		}
	}
	_ = order
	return rows
}

// RenderTable1 prints the table like the paper's Table 1.
func RenderTable1(stack string, rows []Table1Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-22s %6s %10s %12s\n", stack+" Component", "Bugs", "p4-fuzzer", "p4-symbolic")
	total := Table1Row{Component: "Total"}
	for _, r := range rows {
		fmt.Fprintf(&b, "%-22s %6d %10d %12d\n", r.Component, r.Bugs, r.Fuzzer, r.Symbolic)
		total.Bugs += r.Bugs
		total.Fuzzer += r.Fuzzer
		total.Symbolic += r.Symbolic
	}
	fmt.Fprintf(&b, "%-22s %6d %10d %12d\n", "Total", total.Bugs, total.Fuzzer, total.Symbolic)
	return b.String()
}

// Table2Row is one row of the trivial-suite detectability table.
type Table2Row struct {
	Test    string
	Count   int
	Percent float64
}

// Table2 aggregates bugs by the first trivial test that finds them, in
// suite order (the paper's Table 2); the "" test is the last row.
func Table2(stack string) []Table2Row {
	order := []string{"Set P4Info", "Table entry programming", "Read all tables",
		"Packet-in", "Packet-out", "Packet forwarding", ""}
	counts := map[string]int{}
	total := 0
	for _, b := range Bugs(stack) {
		counts[b.TrivialTest]++
		total++
	}
	var rows []Table2Row
	for _, test := range order {
		rows = append(rows, Table2Row{
			Test:    test,
			Count:   counts[test],
			Percent: 100 * float64(counts[test]) / float64(total),
		})
	}
	return rows
}

// RenderTable2 prints PINS and Cerberus side by side, like Table 2.
func RenderTable2() string {
	pins := Table2("PINS")
	cer := Table2("Cerberus")
	var b strings.Builder
	fmt.Fprintf(&b, "%-28s %16s %16s\n", "Test", "PINS", "Cerberus")
	for i := range pins {
		name := pins[i].Test
		if name == "" {
			name = "Not found by any test above"
		}
		fmt.Fprintf(&b, "%-28s %8d (%3.0f%%) %8d (%3.0f%%)\n",
			name, pins[i].Count, pins[i].Percent, cer[i].Count, cer[i].Percent)
	}
	return b.String()
}

// Figure7Row is one histogram bucket of days-to-resolution.
type Figure7Row struct {
	Label    string
	Total    int
	Fuzzer   int
	Symbolic int
}

// Figure7 builds the PINS days-to-resolution histogram by tool.
func Figure7() (rows []Figure7Row, unresolved int) {
	for _, bucket := range fig7Buckets {
		rows = append(rows, Figure7Row{Label: bucket.Label})
	}
	for _, b := range Bugs("PINS") {
		if b.DaysToResolution < 0 {
			unresolved++
			continue
		}
		for i, bucket := range fig7Buckets {
			inside := b.DaysToResolution >= bucket.Lo &&
				(bucket.Hi < 0 || b.DaysToResolution < bucket.Hi)
			if !inside {
				continue
			}
			rows[i].Total++
			if b.Tool == "p4-fuzzer" {
				rows[i].Fuzzer++
			} else {
				rows[i].Symbolic++
			}
			break
		}
	}
	return rows, unresolved
}

// RenderFigure7 prints an ASCII histogram of the distribution.
func RenderFigure7() string {
	rows, unresolved := Figure7()
	var b strings.Builder
	b.WriteString("Days to resolution of PINS bugs (F = p4-fuzzer, S = p4-symbolic)\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%8s | %s%s (%d)\n", r.Label,
			strings.Repeat("F", r.Fuzzer), strings.Repeat("S", r.Symbolic), r.Total)
	}
	fmt.Fprintf(&b, "%d bugs have not been resolved.\n", unresolved)
	return b.String()
}

// HeadlineStats returns the paper's headline resolution statistics: the
// fraction of resolved PINS bugs fixed within 14 days and within 5 days.
func HeadlineStats() (within14, within5 float64) {
	resolved, le14, le5 := 0, 0, 0
	for _, b := range Bugs("PINS") {
		if b.DaysToResolution < 0 {
			continue
		}
		resolved++
		if b.DaysToResolution <= 14 {
			le14++
		}
		if b.DaysToResolution <= 5 {
			le5++
		}
	}
	if resolved == 0 {
		return 0, 0
	}
	return float64(le14) / float64(resolved), float64(le5) / float64(resolved)
}

// LiveFaults returns the catalog bugs that link to an injectable fault in
// the switch simulator, i.e. the subset reproduced live.
func LiveFaults(stack string) []Bug {
	var out []Bug
	for _, b := range Bugs(stack) {
		if b.Fault != "" {
			out = append(out, b)
		}
	}
	return out
}
