// Package bugdb holds the catalog of bugs the paper reports (122 in PINS,
// 32 in Cerberus) with the attributes the evaluation aggregates: component
// (Table 1), discovering tool (Table 1), first trivial test that would
// catch it (Table 2), and days to resolution (Figure 7).
//
// Substitution note (see DESIGN.md §2): per-bug resolution latency is
// human-process data that software cannot re-measure, so the catalog is
// synthesized deterministically to match the paper's published marginals —
// the per-component/per-tool counts of Table 1, the per-test counts of
// Table 2, and the per-bucket histogram of Figure 7 — while the *detection*
// results are reproduced live by running SwitchV against the injected
// faults in internal/switchsim (a subset of the catalog links to those
// faults).
package bugdb

import (
	"fmt"

	"switchv/internal/switchsim"
)

// Bug is one catalog record.
type Bug struct {
	ID          string
	Stack       string // "PINS" or "Cerberus"
	Component   string
	Tool        string // "p4-fuzzer" or "p4-symbolic"
	Description string
	// DaysToResolution is -1 for unresolved bugs.
	DaysToResolution int
	// TrivialTest is the first trivial-suite test that would find the
	// bug, or "" if none does (Table 2's last row).
	TrivialTest string
	// Fault links the record to a live-injectable fault, if one exists.
	Fault switchsim.Fault
}

// table1Cell is one (component, tool) cell of Table 1.
type table1Cell struct {
	component string
	fuzzer    int
	symbolic  int
}

// The paper's Table 1, verbatim.
var pinsTable1 = []table1Cell{
	{switchsim.CompP4RT, 11, 36},
	{switchsim.CompGNMI, 0, 2},
	{switchsim.CompOrchAgent, 12, 11},
	{switchsim.CompSyncD, 10, 13},
	{switchsim.CompLinux, 0, 9},
	{switchsim.CompHardware, 1, 0},
	{switchsim.CompToolchain, 1, 1},
	{switchsim.CompModel, 2, 13},
}

var cerberusTable1 = []table1Cell{
	{switchsim.CompSoftware, 14, 10},
	{switchsim.CompHardware, 0, 1},
	{switchsim.CompModel, 0, 3},
	{switchsim.CompBMv2, 4, 0},
}

// Table 2's counts (PINS percentages in the paper are rounded; the counts
// here sum to the totals).
var pinsTrivial = []struct {
	test  string
	count int
}{
	{"Set P4Info", 22},
	{"Table entry programming", 15},
	{"Read all tables", 10},
	{"Packet-in", 12},
	{"Packet-out", 4},
	{"Packet forwarding", 0},
	{"", 59},
}

var cerberusTrivial = []struct {
	test  string
	count int
}{
	{"Set P4Info", 0},
	{"Table entry programming", 0},
	{"Read all tables", 2},
	{"Packet-in", 4},
	{"Packet-out", 1},
	{"Packet forwarding", 0},
	{"", 25},
}

// Figure 7's buckets for PINS (113 resolved + 9 unresolved = 122). Bucket
// heights approximate the published figure while preserving its headline
// statistics: the majority of bugs resolved within 14 days, 33% within 5.
var fig7Buckets = []struct {
	Label string
	Lo    int // inclusive
	Hi    int // exclusive; -1 = unbounded
	Count int
}{
	{"0-3", 0, 3, 28},
	{"3-6", 3, 6, 16},
	{"6-10", 6, 10, 15},
	{"10-15", 10, 15, 12},
	{"15-20", 15, 20, 9},
	{"20-25", 20, 25, 6},
	{"25-30", 25, 30, 5},
	{"30-60", 30, 60, 12},
	{"60-90", 60, 90, 4},
	{"90-120", 90, 120, 3},
	{"120-150", 120, 150, 2},
	{">= 150", 150, -1, 1},
}

const unresolvedPINS = 9

// liveFaults maps catalog bugs to live-injectable faults per stack and
// component, consumed in order during synthesis.
var liveFaults = map[string][]switchsim.Fault{
	switchsim.CompP4RT: {
		switchsim.FaultBatchAbortOnDeleteMissing,
		switchsim.FaultModifyKeepsOldParams,
		switchsim.FaultAcceptInvalidReference,
		switchsim.FaultReadDropsTernary,
		switchsim.FaultPacketOutPuntedBack,
		switchsim.FaultRejectACLEntries,
		switchsim.FaultP4InfoPushIgnored,
		switchsim.FaultWrongDuplicateStatus,
	},
	switchsim.CompToolchain: {switchsim.FaultZeroBytesAccepted},
	switchsim.CompOrchAgent: {
		switchsim.FaultWCMPPartialCleanup,
		switchsim.FaultWCMPRejectSameBuckets,
		switchsim.FaultWCMPUpdateDropsMember,
		switchsim.FaultVRFDeleteFails,
	},
	switchsim.CompSyncD: {
		switchsim.FaultACLLeakExhausts,
		switchsim.FaultDSCPRemarkZero,
		switchsim.FaultSubmitIngressDropped,
		switchsim.FaultDefaultRouteDelete,
	},
	switchsim.CompHardware: {
		switchsim.FaultTTL1NoTrap,
		switchsim.FaultPortSpeedDrop,
		switchsim.FaultLPMTiebreakWrong,
		switchsim.FaultACLPriorityInverted,
	},
	switchsim.CompLinux: {
		switchsim.FaultLLDPPunt,
		switchsim.FaultRouterSolicitNoise,
		switchsim.FaultPortSyncBreaksIO,
		switchsim.FaultVRF1Conflict,
	},
	switchsim.CompModel: {
		switchsim.FaultModelICMPWrongField,
		switchsim.FaultModelBroadcastDrop,
		switchsim.FaultModelACLAfterRewrite,
		switchsim.FaultRouterInterfaceLimit8,
	},
	switchsim.CompSoftware: {
		switchsim.FaultEncapDstReversed,
		switchsim.FaultVLANReservedAccepted,
	},
}

var (
	pinsBugs     []Bug
	cerberusBugs []Bug
)

func init() {
	pinsBugs = synthesize("PINS", pinsTable1, pinsTrivial, true)
	cerberusBugs = synthesize("Cerberus", cerberusTable1, cerberusTrivial, false)
}

// synthesize builds a deterministic catalog matching the marginals.
func synthesize(stack string, cells []table1Cell, trivial []struct {
	test  string
	count int
}, withDays bool) []Bug {
	var bugs []Bug
	faultCursor := map[string]int{}
	for _, cell := range cells {
		for _, tc := range []struct {
			tool string
			n    int
		}{{"p4-fuzzer", cell.fuzzer}, {"p4-symbolic", cell.symbolic}} {
			tool, n := tc.tool, tc.n
			for i := 0; i < n; i++ {
				b := Bug{
					ID:          fmt.Sprintf("%s-%s-%s-%d", stack, cell.component, tool, i),
					Stack:       stack,
					Component:   cell.component,
					Tool:        tool,
					Description: fmt.Sprintf("%s bug in %s found by %s", stack, cell.component, tool),
				}
				// Link live faults round-robin within the component.
				pool := liveFaults[cell.component]
				if c := faultCursor[cell.component]; c < len(pool) {
					if meta, ok := switchsim.Meta(pool[c]); ok {
						b.Fault = pool[c]
						b.Description = meta.Description
					}
					faultCursor[cell.component]++
				}
				bugs = append(bugs, b)
			}
		}
	}
	// Keep synthesis deterministic regardless of map iteration: sort by a
	// canonical key derived from the table order.
	orderBugs(bugs, cells)

	// Assign trivial tests by walking the counts over the bug list.
	idx := 0
	for _, tv := range trivial {
		for i := 0; i < tv.count && idx < len(bugs); i++ {
			bugs[idx].TrivialTest = tv.test
			idx++
		}
	}

	// Assign resolution days (PINS only; the paper plots Figure 7 for
	// PINS): spread each bucket across the list round-robin so buckets mix
	// across components and tools.
	if withDays {
		var days []int
		for _, bucket := range fig7Buckets {
			for i := 0; i < bucket.Count; i++ {
				d := bucket.Lo + i%span(bucket.Lo, bucket.Hi)
				days = append(days, d)
			}
		}
		// The last unresolvedPINS bugs stay unresolved.
		for i := 0; i < unresolvedPINS && i < len(bugs); i++ {
			bugs[len(bugs)-1-i].DaysToResolution = -1
		}
		di := 0
		for i := range bugs {
			if bugs[i].DaysToResolution == -1 {
				continue
			}
			if di < len(days) {
				bugs[i].DaysToResolution = days[di]
				di++
			} else {
				bugs[i].DaysToResolution = -1
			}
		}
	} else {
		for i := range bugs {
			bugs[i].DaysToResolution = 3 + (i*7)%40
		}
	}
	return bugs
}

func span(lo, hi int) int {
	if hi < 0 {
		return 30
	}
	if hi-lo <= 0 {
		return 1
	}
	return hi - lo
}

// orderBugs sorts the synthesized list into (component order, fuzzer
// before symbolic, index) to keep everything deterministic.
func orderBugs(bugs []Bug, cells []table1Cell) {
	rank := map[string]int{}
	for i, c := range cells {
		rank[c.component] = i
	}
	toolRank := map[string]int{"p4-fuzzer": 0, "p4-symbolic": 1}
	for i := 1; i < len(bugs); i++ {
		for j := i; j > 0; j-- {
			a, b := &bugs[j-1], &bugs[j]
			if rank[a.Component] > rank[b.Component] ||
				(rank[a.Component] == rank[b.Component] && toolRank[a.Tool] > toolRank[b.Tool]) ||
				(rank[a.Component] == rank[b.Component] && toolRank[a.Tool] == toolRank[b.Tool] && a.ID > b.ID) {
				bugs[j-1], bugs[j] = bugs[j], bugs[j-1]
			} else {
				break
			}
		}
	}
}

// Bugs returns the catalog for a stack ("PINS" or "Cerberus").
func Bugs(stack string) []Bug {
	switch stack {
	case "PINS":
		return pinsBugs
	case "Cerberus":
		return cerberusBugs
	default:
		return nil
	}
}

// Stacks lists the validated stacks.
func Stacks() []string { return []string{"PINS", "Cerberus"} }
