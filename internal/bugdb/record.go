// Incident records: the live counterpart of the synthesized catalog.
//
// The daemon observes incidents continuously across a fleet; what it
// persists is catalog-shaped — one record per distinct root cause, with
// the discovering tool and a human-readable log — so fleet state and
// the paper's bug catalog aggregate the same way. Identity is a stable
// fingerprint over (tool, kind, normalized detail): incident details
// embed campaign indices ("batch 17", "packet 3") that vary with seed
// and shard split without changing the underlying bug, so digit runs
// are normalized away before hashing. Records round-trip through JSON;
// EncodeRecords output is deterministic (sorted by fingerprint).
package bugdb

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
)

// Record is one fleet-observed incident in catalog shape.
type Record struct {
	// Fingerprint is the stable fleet-wide identity (see Fingerprint).
	Fingerprint string `json:"fingerprint"`
	// Tool is the discovering engine, "p4-fuzzer" or "p4-symbolic".
	Tool string `json:"tool"`
	// Kind classifies the divergence (the Incident kind).
	Kind string `json:"kind"`
	// Detail is the first observed human-readable log for this record.
	Detail string `json:"detail"`
	// Targets lists the fleet targets the incident was seen on, sorted.
	Targets []string `json:"targets"`
	// FirstRound / LastRound bracket the scheduling rounds the incident
	// was observed in.
	FirstRound int `json:"first_round"`
	LastRound  int `json:"last_round"`
	// Count totals raw observations folded into this record.
	Count int64 `json:"count"`
}

// NormalizeDetail collapses every maximal digit run to '#', so details
// differing only in batch/packet/entry indices share a fingerprint.
func NormalizeDetail(detail string) string {
	var b strings.Builder
	b.Grow(len(detail))
	inRun := false
	for _, r := range detail {
		if r >= '0' && r <= '9' {
			if !inRun {
				b.WriteByte('#')
				inRun = true
			}
			continue
		}
		inRun = false
		b.WriteRune(r)
	}
	return b.String()
}

// Fingerprint derives the stable identity of an incident: FNV-1a over
// the tool, kind and normalized detail, rendered as 16 hex digits.
func Fingerprint(tool, kind, detail string) string {
	h := fnv.New64a()
	h.Write([]byte(tool))
	h.Write([]byte{0})
	h.Write([]byte(kind))
	h.Write([]byte{0})
	h.Write([]byte(NormalizeDetail(detail)))
	return fmt.Sprintf("%016x", h.Sum64())
}

// Observe folds one incident observation into a record list kept sorted
// by fingerprint and returns the updated list. A new root cause inserts
// a record; a known one bumps its count, extends its round bracket and
// adds the target if unseen. Folding observations in a deterministic
// order yields a deterministic list.
func Observe(records []Record, target string, round int, tool, kind, detail string) []Record {
	fp := Fingerprint(tool, kind, detail)
	i := sort.Search(len(records), func(i int) bool { return records[i].Fingerprint >= fp })
	if i < len(records) && records[i].Fingerprint == fp {
		r := &records[i]
		r.Count++
		if round < r.FirstRound {
			r.FirstRound = round
		}
		if round > r.LastRound {
			r.LastRound = round
		}
		j := sort.SearchStrings(r.Targets, target)
		if j >= len(r.Targets) || r.Targets[j] != target {
			r.Targets = append(r.Targets, "")
			copy(r.Targets[j+1:], r.Targets[j:])
			r.Targets[j] = target
		}
		return records
	}
	rec := Record{
		Fingerprint: fp,
		Tool:        tool,
		Kind:        kind,
		Detail:      detail,
		Targets:     []string{target},
		FirstRound:  round,
		LastRound:   round,
		Count:       1,
	}
	records = append(records, Record{})
	copy(records[i+1:], records[i:])
	records[i] = rec
	return records
}

// EncodeRecords renders a record list as deterministic, indented JSON
// (sorted by fingerprint regardless of input order).
func EncodeRecords(records []Record) ([]byte, error) {
	sorted := make([]Record, len(records))
	copy(sorted, records)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Fingerprint < sorted[j].Fingerprint })
	return json.MarshalIndent(sorted, "", "  ")
}

// DecodeRecords parses an EncodeRecords document, rejecting unknown
// fields and records without a fingerprint.
func DecodeRecords(data []byte) ([]Record, error) {
	var records []Record
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&records); err != nil {
		return nil, fmt.Errorf("bugdb: parsing records: %w", err)
	}
	for i, r := range records {
		if r.Fingerprint == "" {
			return nil, fmt.Errorf("bugdb: parsing records: record %d has no fingerprint", i)
		}
	}
	sort.Slice(records, func(i, j int) bool { return records[i].Fingerprint < records[j].Fingerprint })
	return records, nil
}
