package bugdb

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"
)

func TestNormalizeDetail(t *testing.T) {
	cases := []struct{ in, want string }{
		{"reading back after batch 17: RPC timeout", "reading back after batch #: RPC timeout"},
		{"p4rt transport", "p#rt transport"},
		{"entry 10.0.0.0/8 missing", "entry #.#.#.#/# missing"},
		{"no digits", "no digits"},
		{"42", "#"},
	}
	for _, c := range cases {
		if got := NormalizeDetail(c.in); got != c.want {
			t.Errorf("NormalizeDetail(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestFingerprintStability(t *testing.T) {
	a := Fingerprint("p4-fuzzer", "read-mismatch", "missing entry after batch 3")
	b := Fingerprint("p4-fuzzer", "read-mismatch", "missing entry after batch 12")
	if a != b {
		t.Error("fingerprints differing only in indices must collide")
	}
	if c := Fingerprint("p4-symbolic", "read-mismatch", "missing entry after batch 3"); c == a {
		t.Error("tool must be part of the fingerprint")
	}
	if len(a) != 16 {
		t.Errorf("fingerprint %q is not 16 hex digits", a)
	}
}

// observations is the shared fixture of the Observe and golden tests:
// the same root cause from two targets and two rounds, plus a second
// distinct cause.
func observations() []Record {
	var recs []Record
	recs = Observe(recs, "dut-b", 0, "p4-fuzzer", "read-mismatch", "entry 7 vanished")
	recs = Observe(recs, "dut-a", 0, "p4-fuzzer", "read-mismatch", "entry 3 vanished")
	recs = Observe(recs, "dut-a", 1, "p4-fuzzer", "read-mismatch", "entry 9 vanished")
	recs = Observe(recs, "dut-a", 1, "p4-symbolic", "forwarding-divergence", "packet 2: port 11 != 12")
	return recs
}

func TestObserveDedupes(t *testing.T) {
	recs := observations()
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2", len(recs))
	}
	if !sort.SliceIsSorted(recs, func(i, j int) bool { return recs[i].Fingerprint < recs[j].Fingerprint }) {
		t.Error("records not sorted by fingerprint")
	}
	for _, r := range recs {
		switch r.Kind {
		case "read-mismatch":
			if r.Count != 3 || r.FirstRound != 0 || r.LastRound != 1 {
				t.Errorf("read-mismatch record aggregated wrong: %+v", r)
			}
			if !reflect.DeepEqual(r.Targets, []string{"dut-a", "dut-b"}) {
				t.Errorf("targets = %v, want sorted [dut-a dut-b]", r.Targets)
			}
			if r.Detail != "entry 7 vanished" {
				t.Errorf("detail %q is not the first observation", r.Detail)
			}
		case "forwarding-divergence":
			if r.Count != 1 || !reflect.DeepEqual(r.Targets, []string{"dut-a"}) {
				t.Errorf("forwarding-divergence record wrong: %+v", r)
			}
		default:
			t.Errorf("unexpected record kind %q", r.Kind)
		}
	}
}

// TestRecordsRoundTrip: Encode → Decode → Encode is the identity.
func TestRecordsRoundTrip(t *testing.T) {
	recs := observations()
	data, err := EncodeRecords(recs)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeRecords(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(recs, back) {
		t.Errorf("decode mismatch:\n got %+v\nwant %+v", back, recs)
	}
	data2, err := EncodeRecords(back)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, data2) {
		t.Error("re-encoding decoded records changed the document")
	}
}

// TestRecordsGolden pins the incidents.json format byte-for-byte.
// Regenerate with UPDATE_GOLDEN=1 go test ./internal/bugdb -run Golden.
func TestRecordsGolden(t *testing.T) {
	data, err := EncodeRecords(observations())
	if err != nil {
		t.Fatal(err)
	}
	data = append(data, '\n')
	golden := filepath.Join("testdata", "records.golden.json")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, want) {
		t.Errorf("records JSON drifted from %s (UPDATE_GOLDEN=1 to regenerate)\ngot:\n%s\nwant:\n%s", golden, data, want)
	}
}

func TestDecodeRecordsRejectsMalformed(t *testing.T) {
	for name, doc := range map[string]string{
		"unknown-field":  `[{"fingerprint": "ab", "tool": "p4-fuzzer", "bogus": 1}]`,
		"no-fingerprint": `[{"tool": "p4-fuzzer"}]`,
		"not-json":       `[`,
	} {
		if _, err := DecodeRecords([]byte(doc)); err == nil {
			t.Errorf("DecodeRecords accepted %s input", name)
		}
	}
}
