package bdd

import (
	"math/big"
	"math/rand"
	"testing"
)

func TestBasics(t *testing.T) {
	b := New(3)
	x, y, z := b.Var(0), b.Var(1), b.Var(2)

	if b.And(x, b.Not(x)) != False {
		t.Error("x & ~x != false")
	}
	if b.Or(x, b.Not(x)) != True {
		t.Error("x | ~x != true")
	}
	if b.Xor(x, x) != False {
		t.Error("x ^ x != false")
	}
	if b.Implies(False, x) != True {
		t.Error("false -> x != true")
	}
	if b.Iff(x, x) != True {
		t.Error("x <-> x != true")
	}
	f := b.And(x, b.Or(y, z))
	if !b.Eval(f, []bool{true, true, false}) {
		t.Error("eval(110)")
	}
	if b.Eval(f, []bool{false, true, true}) {
		t.Error("eval(011)")
	}
	// Hash consing: same structure, same node.
	if b.And(x, b.Or(y, z)) != f {
		t.Error("not canonical")
	}
}

func TestCount(t *testing.T) {
	b := New(4)
	x, y := b.Var(0), b.Var(1)
	cases := []struct {
		n    Node
		want int64
	}{
		{True, 16},
		{False, 0},
		{x, 8},
		{b.And(x, y), 4},
		{b.Or(x, y), 12},
		{b.Xor(x, y), 8},
		{b.Var(3), 8}, // a low-order variable
	}
	for _, c := range cases {
		if got := b.Count(c.n); got.Cmp(big.NewInt(c.want)) != 0 {
			t.Errorf("Count = %v, want %d", got, c.want)
		}
	}
}

func TestCountAgainstEnumeration(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 50; trial++ {
		const n = 8
		b := New(n)
		f := randomFormula(b, rng, 4)
		want := 0
		assignment := make([]bool, n)
		for m := 0; m < 1<<n; m++ {
			for i := 0; i < n; i++ {
				assignment[i] = m>>i&1 == 1
			}
			if b.Eval(f, assignment) {
				want++
			}
		}
		if got := b.Count(f); got.Cmp(big.NewInt(int64(want))) != 0 {
			t.Fatalf("trial %d: Count = %v, enumeration %d", trial, got, want)
		}
	}
}

func randomFormula(b *Builder, rng *rand.Rand, depth int) Node {
	if depth == 0 {
		if rng.Intn(2) == 0 {
			return b.Var(rng.Intn(b.NumVars()))
		}
		return b.NVar(rng.Intn(b.NumVars()))
	}
	x := randomFormula(b, rng, depth-1)
	y := randomFormula(b, rng, depth-1)
	switch rng.Intn(4) {
	case 0:
		return b.And(x, y)
	case 1:
		return b.Or(x, y)
	case 2:
		return b.Xor(x, y)
	default:
		return b.Not(x)
	}
}

func TestSample(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	b := New(10)
	// (v0 xor v1) and v9
	f := b.And(b.Xor(b.Var(0), b.Var(1)), b.Var(9))
	for i := 0; i < 200; i++ {
		a, ok := b.Sample(f, rng)
		if !ok {
			t.Fatal("unsat?")
		}
		if !b.Eval(f, a) {
			t.Fatalf("sample %v does not satisfy", a)
		}
	}
	if _, ok := b.Sample(False, rng); ok {
		t.Error("sampled from false")
	}
	// Uniformity smoke test: v0 should be true about half the time.
	trues := 0
	for i := 0; i < 2000; i++ {
		a, _ := b.Sample(f, rng)
		if a[0] {
			trues++
		}
	}
	if trues < 800 || trues > 1200 {
		t.Errorf("v0 true in %d/2000 samples; sampling is biased", trues)
	}
}

func TestIntComparators(t *testing.T) {
	b := New(8)
	bits := []int{0, 1, 2, 3, 4, 5, 6, 7} // MSB first
	eval := func(n Node, v uint64) bool {
		a := make([]bool, 8)
		for i := 0; i < 8; i++ {
			a[i] = v>>(7-uint(i))&1 == 1
		}
		return b.Eval(n, a)
	}
	eq42 := b.EqConst(bits, 42)
	lt42 := b.LtConst(bits, 42)
	gt42 := b.GtConst(bits, 42)
	for v := uint64(0); v < 256; v++ {
		if eval(eq42, v) != (v == 42) {
			t.Fatalf("eq: v=%d", v)
		}
		if eval(lt42, v) != (v < 42) {
			t.Fatalf("lt: v=%d", v)
		}
		if eval(gt42, v) != (v > 42) {
			t.Fatalf("gt: v=%d", v)
		}
	}
	if got := b.Count(eq42); got.Cmp(big.NewInt(1)) != 0 {
		t.Errorf("Count(eq) = %v", got)
	}
	if got := b.Count(lt42); got.Cmp(big.NewInt(42)) != 0 {
		t.Errorf("Count(lt) = %v", got)
	}
}

func TestVarBounds(t *testing.T) {
	b := New(2)
	for _, f := range []func(){
		func() { b.Var(-1) },
		func() { b.Var(2) },
		func() { b.NVar(5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("no panic")
				}
			}()
			f()
		}()
	}
	if b.Const(true) != True || b.Const(false) != False {
		t.Error("Const")
	}
	if b.Size() < 2 {
		t.Error("Size")
	}
}
