// Package bdd implements reduced ordered binary decision diagrams with
// model counting and uniform solution sampling. The fuzzer uses BDDs to
// reason about P4-constraints (§7 "Fuzzing"): entry restrictions are
// compiled to a BDD over the referenced key bits, solutions are sampled to
// make generated entries constraint-compliant, and the negation is sampled
// to produce entries that violate exactly the constraint while remaining
// otherwise valid.
package bdd

import (
	"fmt"
	"math/big"
	"math/rand"
)

// Node references a BDD node; 0 is the false terminal, 1 the true one.
type Node int32

// Terminals.
const (
	False Node = 0
	True  Node = 1
)

type node struct {
	level  int32 // variable index; terminals use a sentinel level
	lo, hi Node
}

// Builder constructs and combines BDD nodes over a fixed variable count.
type Builder struct {
	numVars int
	nodes   []node
	unique  map[node]Node
	apply   map[applyKey]Node
	notMemo map[Node]Node
	counts  map[Node]*big.Int
}

type applyKey struct {
	op   byte // '&', '|', '^'
	a, b Node
}

const terminalLevel = int32(1) << 30

// New returns a builder over numVars boolean variables, ordered by index.
func New(numVars int) *Builder {
	b := &Builder{
		numVars: numVars,
		unique:  map[node]Node{},
		apply:   map[applyKey]Node{},
		notMemo: map[Node]Node{},
		counts:  map[Node]*big.Int{},
	}
	b.nodes = []node{
		{level: terminalLevel}, // False
		{level: terminalLevel}, // True
	}
	return b
}

// NumVars returns the variable count.
func (b *Builder) NumVars() int { return b.numVars }

// Size returns the number of allocated nodes (including terminals).
func (b *Builder) Size() int { return len(b.nodes) }

func (b *Builder) mk(level int32, lo, hi Node) Node {
	if lo == hi {
		return lo
	}
	n := node{level: level, lo: lo, hi: hi}
	if id, ok := b.unique[n]; ok {
		return id
	}
	id := Node(len(b.nodes))
	b.nodes = append(b.nodes, n)
	b.unique[n] = id
	return id
}

// Var returns the BDD for variable i.
func (b *Builder) Var(i int) Node {
	if i < 0 || i >= b.numVars {
		panic(fmt.Sprintf("bdd: variable %d out of range [0,%d)", i, b.numVars))
	}
	return b.mk(int32(i), False, True)
}

// NVar returns the BDD for the negation of variable i.
func (b *Builder) NVar(i int) Node {
	if i < 0 || i >= b.numVars {
		panic(fmt.Sprintf("bdd: variable %d out of range [0,%d)", i, b.numVars))
	}
	return b.mk(int32(i), True, False)
}

// Const returns a terminal.
func (b *Builder) Const(v bool) Node {
	if v {
		return True
	}
	return False
}

// Not returns the complement.
func (b *Builder) Not(a Node) Node {
	switch a {
	case False:
		return True
	case True:
		return False
	}
	if r, ok := b.notMemo[a]; ok {
		return r
	}
	n := b.nodes[a]
	r := b.mk(n.level, b.Not(n.lo), b.Not(n.hi))
	b.notMemo[a] = r
	return r
}

// And returns a ∧ b.
func (b *Builder) And(x, y Node) Node { return b.applyOp('&', x, y) }

// Or returns a ∨ b.
func (b *Builder) Or(x, y Node) Node { return b.applyOp('|', x, y) }

// Xor returns a ⊕ b.
func (b *Builder) Xor(x, y Node) Node { return b.applyOp('^', x, y) }

// Implies returns a → b.
func (b *Builder) Implies(x, y Node) Node { return b.Or(b.Not(x), y) }

// Iff returns a ↔ b.
func (b *Builder) Iff(x, y Node) Node { return b.Not(b.Xor(x, y)) }

func (b *Builder) applyOp(op byte, x, y Node) Node {
	// Terminal cases.
	switch op {
	case '&':
		if x == False || y == False {
			return False
		}
		if x == True {
			return y
		}
		if y == True {
			return x
		}
		if x == y {
			return x
		}
	case '|':
		if x == True || y == True {
			return True
		}
		if x == False {
			return y
		}
		if y == False {
			return x
		}
		if x == y {
			return x
		}
	case '^':
		if x == False {
			return y
		}
		if y == False {
			return x
		}
		if x == y {
			return False
		}
		if x == True {
			return b.Not(y)
		}
		if y == True {
			return b.Not(x)
		}
	}
	if x > y {
		x, y = y, x
	}
	key := applyKey{op, x, y}
	if r, ok := b.apply[key]; ok {
		return r
	}
	nx, ny := b.nodes[x], b.nodes[y]
	level := nx.level
	if ny.level < level {
		level = ny.level
	}
	xlo, xhi := x, x
	if nx.level == level {
		xlo, xhi = nx.lo, nx.hi
	}
	ylo, yhi := y, y
	if ny.level == level {
		ylo, yhi = ny.lo, ny.hi
	}
	r := b.mk(level, b.applyOp(op, xlo, ylo), b.applyOp(op, xhi, yhi))
	b.apply[key] = r
	return r
}

// Eval evaluates the BDD under a full assignment.
func (b *Builder) Eval(n Node, assignment []bool) bool {
	for n != False && n != True {
		nd := b.nodes[n]
		if assignment[nd.level] {
			n = nd.hi
		} else {
			n = nd.lo
		}
	}
	return n == True
}

var two = big.NewInt(2)

// Count returns the number of satisfying assignments over all NumVars
// variables.
func (b *Builder) Count(n Node) *big.Int {
	return new(big.Int).Mul(b.countFrom(n), pow2(b.skipped(0, n)))
}

// countFrom counts models of the sub-BDD, normalized to the node's level.
func (b *Builder) countFrom(n Node) *big.Int {
	if n == False {
		return big.NewInt(0)
	}
	if n == True {
		return big.NewInt(1)
	}
	if c, ok := b.counts[n]; ok {
		return c
	}
	nd := b.nodes[n]
	lo := new(big.Int).Mul(b.countFrom(nd.lo), pow2(b.skipped(int(nd.level)+1, nd.lo)))
	hi := new(big.Int).Mul(b.countFrom(nd.hi), pow2(b.skipped(int(nd.level)+1, nd.hi)))
	c := new(big.Int).Add(lo, hi)
	b.counts[n] = c
	return c
}

// skipped returns how many variable levels lie strictly between from and
// the node's level (terminals count to NumVars).
func (b *Builder) skipped(from int, n Node) int {
	level := b.numVars
	if n != False && n != True {
		level = int(b.nodes[n].level)
	}
	if level < from {
		return 0
	}
	return level - from
}

func pow2(k int) *big.Int {
	return new(big.Int).Lsh(big.NewInt(1), uint(k))
}

// Sample draws a uniformly random satisfying assignment; ok is false when
// the BDD is unsatisfiable.
func (b *Builder) Sample(n Node, rng *rand.Rand) (assignment []bool, ok bool) {
	if n == False {
		return nil, false
	}
	assignment = make([]bool, b.numVars)
	level := 0
	for {
		if n == True {
			// Remaining variables are free.
			for ; level < b.numVars; level++ {
				assignment[level] = rng.Intn(2) == 1
			}
			return assignment, true
		}
		nd := b.nodes[n]
		// Variables between level and nd.level are free.
		for ; level < int(nd.level); level++ {
			assignment[level] = rng.Intn(2) == 1
		}
		// Choose the branch proportionally to its model count.
		loCount := new(big.Int).Mul(b.countFrom(nd.lo), pow2(b.skipped(level+1, nd.lo)))
		hiCount := new(big.Int).Mul(b.countFrom(nd.hi), pow2(b.skipped(level+1, nd.hi)))
		total := new(big.Int).Add(loCount, hiCount)
		pick := new(big.Int).Rand(rng, total)
		if pick.Cmp(loCount) < 0 {
			assignment[level] = false
			n = nd.lo
		} else {
			assignment[level] = true
			n = nd.hi
		}
		level++
	}
}

// MinSat returns the deterministic minimum satisfying assignment of n:
// the walk prefers the lo (false) branch whenever it stays satisfiable,
// and every variable the walk never constrains reads false. In a reduced
// OBDD every node other than False has a satisfying path, so the walk
// needs no backtracking. ok is false when n is unsatisfiable.
func (b *Builder) MinSat(n Node) (assignment []bool, ok bool) {
	if n == False {
		return nil, false
	}
	assignment = make([]bool, b.numVars)
	for n != True {
		nd := b.nodes[n]
		if nd.lo != False {
			n = nd.lo
		} else {
			assignment[nd.level] = true
			n = nd.hi
		}
	}
	return assignment, true
}

// EqConst returns the BDD for "the integer formed by bits == value", where
// bits lists variable indices most-significant first.
func (b *Builder) EqConst(bits []int, value uint64) Node {
	r := True
	for i, v := range bits {
		bit := value>>(uint(len(bits)-1-i))&1 == 1
		if bit {
			r = b.And(r, b.Var(v))
		} else {
			r = b.And(r, b.NVar(v))
		}
	}
	return r
}

// LtConst returns the BDD for "bits < value" (unsigned, MSB-first).
func (b *Builder) LtConst(bits []int, value uint64) Node {
	// Walk MSB to LSB: strictly-less happens at the first position where
	// the constant has 1 and the variable is 0, with all higher bits equal.
	r := False
	prefixEq := True
	for i, v := range bits {
		bit := value>>(uint(len(bits)-1-i))&1 == 1
		if bit {
			r = b.Or(r, b.And(prefixEq, b.NVar(v)))
			prefixEq = b.And(prefixEq, b.Var(v))
		} else {
			prefixEq = b.And(prefixEq, b.NVar(v))
		}
	}
	return r
}

// GtConst returns the BDD for "bits > value".
func (b *Builder) GtConst(bits []int, value uint64) Node {
	return b.Not(b.Or(b.LtConst(bits, value), b.EqConst(bits, value)))
}
