// Package testutil provides shared fixtures: realistic entry sets for the
// embedded models, used by tests and benchmarks across packages.
package testutil

import (
	"fmt"

	"switchv/internal/p4/ir"
	"switchv/internal/p4/p4info"
	"switchv/internal/p4/pdpi"
	"switchv/internal/p4/value"
	"switchv/internal/packet"
)

// RouterMAC is the L3-admitted destination MAC in the fixtures.
var RouterMAC = packet.MAC{0x02, 0x00, 0x00, 0x00, 0x00, 0xaa}

// mustAdd validates and inserts, panicking on fixture bugs.
func mustAdd(store *pdpi.Store, e *pdpi.Entry) {
	if err := e.Validate(); err != nil {
		panic(fmt.Sprintf("testutil: invalid fixture entry %s: %v", e, err))
	}
	if err := store.Insert(e); err != nil {
		panic(fmt.Sprintf("testutil: %v", err))
	}
}

func tbl(prog *ir.Program, name string) *ir.Table {
	t, ok := prog.TableByName(name)
	if !ok {
		panic("testutil: missing table " + name)
	}
	return t
}

func act(prog *ir.Program, name string) *ir.Action {
	a, ok := prog.ActionByName(name)
	if !ok {
		panic("testutil: missing action " + name)
	}
	return a
}

// RoutingFixture installs a small, fully wired routing configuration into
// store for either embedded model: VRF 1 assigned to all IPv4/IPv6
// traffic, L3 admission of RouterMAC, two nexthops on ports 11 and 12,
// one /8 IPv4 route, one /16 IPv4 route, one /32 IPv6-mapped route, a WCMP
// group, and an ACL punt rule for TCP:179.
func RoutingFixture(prog *ir.Program, store *pdpi.Store) {
	mustAdd(store, &pdpi.Entry{
		Table:   tbl(prog, "vrf_table"),
		Matches: []pdpi.Match{{Key: "vrf_id", Kind: ir.MatchExact, Value: value.New(1, 10)}},
		Action:  &pdpi.ActionInvocation{Action: prog.NoAction},
	})
	for _, m := range []pdpi.Match{
		{Key: "is_ipv4", Kind: ir.MatchOptional, Value: value.New(1, 1)},
		{Key: "is_ipv6", Kind: ir.MatchOptional, Value: value.New(1, 1)},
	} {
		mustAdd(store, &pdpi.Entry{
			Table:    tbl(prog, "acl_pre_ingress_table"),
			Matches:  []pdpi.Match{m},
			Priority: 1,
			Action:   &pdpi.ActionInvocation{Action: act(prog, "set_vrf"), Args: []value.V{value.New(1, 10)}},
		})
	}
	mustAdd(store, &pdpi.Entry{
		Table: tbl(prog, "l3_admit_table"),
		Matches: []pdpi.Match{{Key: "dst_mac", Kind: ir.MatchTernary,
			Value: value.New(0x0200000000aa, 48), Mask: value.Ones(48)}},
		Priority: 1,
		Action:   &pdpi.ActionInvocation{Action: act(prog, "admit_to_l3")},
	})
	// Two nexthops via router interfaces 1 and 2 (ports 11 and 12).
	for nh := uint64(1); nh <= 2; nh++ {
		mustAdd(store, &pdpi.Entry{
			Table:   tbl(prog, "nexthop_table"),
			Matches: []pdpi.Match{{Key: "nexthop_id", Kind: ir.MatchExact, Value: value.New(nh, 10)}},
			Action: &pdpi.ActionInvocation{Action: act(prog, "set_nexthop"),
				Args: []value.V{value.New(nh, 10), value.New(nh, 10)}},
		})
		mustAdd(store, &pdpi.Entry{
			Table: tbl(prog, "neighbor_table"),
			Matches: []pdpi.Match{
				{Key: "router_interface_id", Kind: ir.MatchExact, Value: value.New(nh, 10)},
				{Key: "neighbor_id", Kind: ir.MatchExact, Value: value.New(nh, 10)},
			},
			Action: &pdpi.ActionInvocation{Action: act(prog, "set_dst_mac"),
				Args: []value.V{value.New(0x020000000100+nh, 48)}},
		})
		mustAdd(store, &pdpi.Entry{
			Table:   tbl(prog, "router_interface_table"),
			Matches: []pdpi.Match{{Key: "router_interface_id", Kind: ir.MatchExact, Value: value.New(nh, 10)}},
			Action: &pdpi.ActionInvocation{Action: act(prog, "set_port_and_src_mac"),
				Args: []value.V{value.New(nh+10, 16), value.New(0x0200000000aa, 48)}},
		})
	}
	// Routes: 10/8 -> nh 1, 10.99/16 -> nh 2, and a WCMP route 10.200/16.
	mustAdd(store, &pdpi.Entry{
		Table: tbl(prog, "ipv4_table"),
		Matches: []pdpi.Match{
			{Key: "vrf_id", Kind: ir.MatchExact, Value: value.New(1, 10)},
			{Key: "ipv4_dst", Kind: ir.MatchLPM, Value: value.New(0x0a000000, 32), PrefixLen: 8},
		},
		Action: &pdpi.ActionInvocation{Action: act(prog, "set_nexthop_id"), Args: []value.V{value.New(1, 10)}},
	})
	mustAdd(store, &pdpi.Entry{
		Table: tbl(prog, "ipv4_table"),
		Matches: []pdpi.Match{
			{Key: "vrf_id", Kind: ir.MatchExact, Value: value.New(1, 10)},
			{Key: "ipv4_dst", Kind: ir.MatchLPM, Value: value.New(0x0a630000, 32), PrefixLen: 16},
		},
		Action: &pdpi.ActionInvocation{Action: act(prog, "set_nexthop_id"), Args: []value.V{value.New(2, 10)}},
	})
	mustAdd(store, &pdpi.Entry{
		Table: tbl(prog, "ipv4_table"),
		Matches: []pdpi.Match{
			{Key: "vrf_id", Kind: ir.MatchExact, Value: value.New(1, 10)},
			{Key: "ipv4_dst", Kind: ir.MatchLPM, Value: value.New(0x0ac80000, 32), PrefixLen: 16},
		},
		Action: &pdpi.ActionInvocation{Action: act(prog, "set_wcmp_group_id"), Args: []value.V{value.New(5, 10)}},
	})
	mustAdd(store, &pdpi.Entry{
		Table:   tbl(prog, "wcmp_group_table"),
		Matches: []pdpi.Match{{Key: "wcmp_group_id", Kind: ir.MatchExact, Value: value.New(5, 10)}},
		ActionSet: []pdpi.WeightedAction{
			{ActionInvocation: pdpi.ActionInvocation{Action: act(prog, "set_nexthop_id"), Args: []value.V{value.New(1, 10)}}, Weight: 2},
			{ActionInvocation: pdpi.ActionInvocation{Action: act(prog, "set_nexthop_id"), Args: []value.V{value.New(2, 10)}}, Weight: 1},
		},
	})
	// IPv6 default route.
	mustAdd(store, &pdpi.Entry{
		Table: tbl(prog, "ipv6_table"),
		Matches: []pdpi.Match{
			{Key: "vrf_id", Kind: ir.MatchExact, Value: value.New(1, 10)},
			{Key: "ipv6_dst", Kind: ir.MatchLPM, Value: value.New128(0x2001_0db8_0000_0000, 0, 128), PrefixLen: 32},
		},
		Action: &pdpi.ActionInvocation{Action: act(prog, "set_nexthop_id"), Args: []value.V{value.New(1, 10)}},
	})
	// ACL: punt BGP (TCP/179). The wan model's restriction requires the
	// IP protocol to be pinned when matching L4 ports.
	mustAdd(store, &pdpi.Entry{
		Table: tbl(prog, "acl_ingress_table"),
		Matches: []pdpi.Match{
			{Key: "ip_protocol", Kind: ir.MatchTernary, Value: value.New(6, 8), Mask: value.Ones(8)},
			{Key: "l4_dst_port", Kind: ir.MatchTernary, Value: value.New(179, 16), Mask: value.Ones(16)},
		},
		Priority: 10,
		Action:   &pdpi.ActionInvocation{Action: act(prog, "acl_trap")},
	})
}

// IPv4UDP builds an Ethernet/IPv4/UDP packet addressed to the router MAC.
func IPv4UDP(dst string, ttl uint8, dstPort uint16) []byte {
	ip := &packet.IPv4{
		TTL:      ttl,
		Protocol: packet.IPProtocolUDP,
		SrcIP:    packet.MustParseIPv4("192.168.1.1"),
		DstIP:    packet.MustParseIPv4(dst),
	}
	udp := &packet.UDP{SrcPort: 4000, DstPort: dstPort}
	udp.SetNetworkLayerForChecksum(ip.SrcIP[:], ip.DstIP[:])
	data, err := packet.Serialize(packet.SerializeOptions{FixLengths: true, ComputeChecksums: true},
		&packet.Ethernet{DstMAC: RouterMAC, SrcMAC: packet.MAC{2, 0, 0, 0, 0, 1}, EtherType: packet.EtherTypeIPv4},
		ip, udp, packet.Raw([]byte("test-payload")))
	if err != nil {
		panic(err)
	}
	return data
}

// InstallOrder returns the fixture entries of store sorted so that
// referenced tables are installed first (dependency order).
func InstallOrder(info *p4info.Info, store *pdpi.Store) []*pdpi.Entry {
	var out []*pdpi.Entry
	for _, t := range info.TopoOrder() {
		out = append(out, store.Entries(t.Name)...)
	}
	return out
}

// TunnelFixture adds a GRE tunnel path to a wan-model store: tunnel 7,
// nexthop 3 using it via router interface 1, and a 10.77/16 route.
// RoutingFixture must already be installed (it provides rif/neighbor 1).
func TunnelFixture(prog *ir.Program, store *pdpi.Store) {
	mustAdd(store, &pdpi.Entry{
		Table:   tbl(prog, "tunnel_table"),
		Matches: []pdpi.Match{{Key: "tunnel_id", Kind: ir.MatchExact, Value: value.New(7, 10)}},
		Action: &pdpi.ActionInvocation{Action: act(prog, "encap_gre"),
			Args: []value.V{value.New(0xc0000201, 32), value.New(0xc0000202, 32)}},
	})
	mustAdd(store, &pdpi.Entry{
		Table:   tbl(prog, "nexthop_table"),
		Matches: []pdpi.Match{{Key: "nexthop_id", Kind: ir.MatchExact, Value: value.New(3, 10)}},
		Action: &pdpi.ActionInvocation{Action: act(prog, "set_nexthop_and_tunnel"),
			Args: []value.V{value.New(1, 10), value.New(1, 10), value.New(7, 10)}},
	})
	mustAdd(store, &pdpi.Entry{
		Table: tbl(prog, "ipv4_table"),
		Matches: []pdpi.Match{
			{Key: "vrf_id", Kind: ir.MatchExact, Value: value.New(1, 10)},
			{Key: "ipv4_dst", Kind: ir.MatchLPM, Value: value.New(0x0a4d0000, 32), PrefixLen: 16},
		},
		Action: &pdpi.ActionInvocation{Action: act(prog, "set_nexthop_id"), Args: []value.V{value.New(3, 10)}},
	})
}

// WideWCMPFixture adds WCMP group 6 with three distinct buckets over
// nexthops 1 and 2. Valid everywhere; a switch whose orchagent cannot
// create groups with more than two members (partial-cleanup bug) fails
// the install. RoutingFixture must already be installed.
func WideWCMPFixture(prog *ir.Program, store *pdpi.Store) {
	mustAdd(store, &pdpi.Entry{
		Table:   tbl(prog, "wcmp_group_table"),
		Matches: []pdpi.Match{{Key: "wcmp_group_id", Kind: ir.MatchExact, Value: value.New(6, 10)}},
		ActionSet: []pdpi.WeightedAction{
			{ActionInvocation: pdpi.ActionInvocation{Action: act(prog, "set_nexthop_id"), Args: []value.V{value.New(1, 10)}}, Weight: 1},
			{ActionInvocation: pdpi.ActionInvocation{Action: act(prog, "set_nexthop_id"), Args: []value.V{value.New(2, 10)}}, Weight: 1},
			{ActionInvocation: pdpi.ActionInvocation{Action: act(prog, "set_nexthop_id"), Args: []value.V{value.New(1, 10)}}, Weight: 2},
		},
	})
}

// DupBucketWCMPFixture adds WCMP group 7 whose two buckets are
// identical — valid per the P4Runtime spec, rejected by the
// same-buckets orchagent bug. RoutingFixture must already be installed.
func DupBucketWCMPFixture(prog *ir.Program, store *pdpi.Store) {
	mustAdd(store, &pdpi.Entry{
		Table:   tbl(prog, "wcmp_group_table"),
		Matches: []pdpi.Match{{Key: "wcmp_group_id", Kind: ir.MatchExact, Value: value.New(7, 10)}},
		ActionSet: []pdpi.WeightedAction{
			{ActionInvocation: pdpi.ActionInvocation{Action: act(prog, "set_nexthop_id"), Args: []value.V{value.New(1, 10)}}, Weight: 2},
			{ActionInvocation: pdpi.ActionInvocation{Action: act(prog, "set_nexthop_id"), Args: []value.V{value.New(1, 10)}}, Weight: 2},
		},
	})
}

// ManyRIFsFixture adds router interfaces 3..11, taking the total (with
// RoutingFixture's two) to eleven — within the model's guarantee, past
// the real chip's capacity of eight.
func ManyRIFsFixture(prog *ir.Program, store *pdpi.Store) {
	for id := uint64(3); id <= 11; id++ {
		mustAdd(store, &pdpi.Entry{
			Table:   tbl(prog, "router_interface_table"),
			Matches: []pdpi.Match{{Key: "router_interface_id", Kind: ir.MatchExact, Value: value.New(id, 10)}},
			Action: &pdpi.ActionInvocation{Action: act(prog, "set_port_and_src_mac"),
				Args: []value.V{value.New(id + 20, 16), value.New(0x0200000000aa, 48)}},
		})
	}
}

// ACLShadowFixture adds a priority-1 ingress drop for all TCP traffic,
// shadowed (for TCP/179) by RoutingFixture's priority-10 BGP trap. On
// correct hardware the trap wins; a TCAM that picks the lowest-priority
// match drops BGP instead.
func ACLShadowFixture(prog *ir.Program, store *pdpi.Store) {
	mustAdd(store, &pdpi.Entry{
		Table: tbl(prog, "acl_ingress_table"),
		Matches: []pdpi.Match{
			{Key: "ip_protocol", Kind: ir.MatchTernary, Value: value.New(6, 8), Mask: value.Ones(8)},
		},
		Priority: 1,
		Action:   &pdpi.ActionInvocation{Action: act(prog, "acl_drop")},
	})
}

// ICMPTrapFixture adds an ingress trap for ICMP echo requests
// (ip_protocol 1, icmp type 8), restriction-compliant per the model's
// "icmp_type requires ip_protocol == 1" rule. A switch matching the
// ICMP code field instead of the type field misses echo requests, whose
// code is 0.
func ICMPTrapFixture(prog *ir.Program, store *pdpi.Store) {
	mustAdd(store, &pdpi.Entry{
		Table: tbl(prog, "acl_ingress_table"),
		Matches: []pdpi.Match{
			{Key: "ip_protocol", Kind: ir.MatchTernary, Value: value.New(1, 8), Mask: value.Ones(8)},
			{Key: "icmp_type", Kind: ir.MatchTernary, Value: value.New(8, 8), Mask: value.Ones(8)},
		},
		Priority: 20,
		Action:   &pdpi.ActionInvocation{Action: act(prog, "acl_trap")},
	})
}

// PostRewriteDropFixture adds an ingress drop keyed on nexthop 1's
// neighbor MAC — a destination MAC that only exists after the routing
// rewrite. The model applies the ingress ACL to the rewritten headers,
// so traffic routed via nexthop 1 must be dropped; a switch evaluating
// the ACL before the rewrite forwards it. RoutingFixture must already
// be installed.
func PostRewriteDropFixture(prog *ir.Program, store *pdpi.Store) {
	mustAdd(store, &pdpi.Entry{
		Table: tbl(prog, "acl_ingress_table"),
		Matches: []pdpi.Match{
			{Key: "dst_mac", Kind: ir.MatchTernary, Value: value.New(0x020000000101, 48), Mask: value.Ones(48)},
		},
		Priority: 30,
		Action:   &pdpi.ActionInvocation{Action: act(prog, "acl_drop")},
	})
}

// DefaultRouteFixture adds a 0.0.0.0/0 route via nexthop 1 in VRF 1.
func DefaultRouteFixture(prog *ir.Program, store *pdpi.Store) {
	mustAdd(store, &pdpi.Entry{
		Table: tbl(prog, "ipv4_table"),
		Matches: []pdpi.Match{
			{Key: "vrf_id", Kind: ir.MatchExact, Value: value.New(1, 10)},
			{Key: "ipv4_dst", Kind: ir.MatchLPM, Value: value.Zero(32), PrefixLen: 0},
		},
		Action: &pdpi.ActionInvocation{Action: act(prog, "set_nexthop_id"), Args: []value.V{value.New(1, 10)}},
	})
}
