package packet

// Golden-file round trips: canonical packets serialize to byte-exact
// hex fixtures in testdata/, parse back losslessly, and re-serialize
// after a header rewrite with correctly recomputed checksums. The
// fixtures pin the wire format the two simulator engines must both
// reproduce; regenerate with -update after an intentional change.

import (
	"bytes"
	"encoding/hex"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files under testdata/")

func goldenCompare(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name+".hex")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(hex.EncodeToString(got)+"\n"), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	want, err := hex.DecodeString(strings.TrimSpace(string(raw)))
	if err != nil {
		t.Fatalf("corrupt golden file %s: %v", path, err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s: serialized bytes differ from golden\n got: %x\nwant: %x", name, got, want)
	}
}

// goldenPackets builds each canonical layer stack the models exercise.
func goldenPackets(t *testing.T) map[string][]byte {
	t.Helper()
	opts := SerializeOptions{FixLengths: true, ComputeChecksums: true}
	mk := func(layers ...SerializableLayer) []byte {
		data, err := Serialize(opts, layers...)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	eth := func(etherType uint16) *Ethernet {
		return &Ethernet{
			DstMAC:    MAC{0x02, 0, 0, 0, 0, 0xaa},
			SrcMAC:    MAC{0x02, 0, 0, 0, 0, 0x01},
			EtherType: etherType,
		}
	}
	ip4 := &IPv4{
		TOS: 0x48, ID: 0x1234, TTL: 64, Protocol: IPProtocolUDP,
		SrcIP: MustParseIPv4("192.168.1.1"), DstIP: MustParseIPv4("10.1.2.3"),
	}
	udp := &UDP{SrcPort: 1000, DstPort: 53}
	udp.SetNetworkLayerForChecksum(ip4.SrcIP[:], ip4.DstIP[:])

	tcpIP := &IPv4{TTL: 64, Protocol: IPProtocolTCP,
		SrcIP: MustParseIPv4("192.168.1.1"), DstIP: MustParseIPv4("10.1.2.3")}
	tcp := &TCP{SrcPort: 33000, DstPort: 179, Seq: 7, Flags: TCPSyn | TCPAck, Window: 512}
	tcp.SetNetworkLayerForChecksum(tcpIP.SrcIP[:], tcpIP.DstIP[:])

	ip6 := &IPv6{TrafficClass: 0x48, FlowLabel: 0xbeef, NextHeader: IPProtocolICMPv6, HopLimit: 255,
		SrcIP: MustParseIPv6("2001:db8::1"), DstIP: MustParseIPv6("2001:db8::2")}
	icmp6 := &ICMPv6{Type: ICMPv6TypeNeighborSolicit, RestOf: 0}
	icmp6.SetNetworkLayerForChecksum(ip6.SrcIP[:], ip6.DstIP[:])

	greIP := &IPv4{TTL: 63, Protocol: IPProtocolGRE,
		SrcIP: MustParseIPv4("172.16.0.1"), DstIP: MustParseIPv4("172.16.0.2")}
	// Protocol 253 (experimental) keeps the inner payload opaque, so a
	// generic layer walk does not decode it as a transport header.
	inner := &IPv4{TTL: 9, Protocol: 253,
		SrcIP: MustParseIPv4("10.0.0.1"), DstIP: MustParseIPv4("10.0.0.2")}

	return map[string][]byte{
		"eth_ipv4_udp": mk(eth(EtherTypeIPv4), ip4, udp, Raw([]byte("dns query"))),
		"eth_ipv4_tcp": mk(eth(EtherTypeIPv4), tcpIP, tcp, Raw([]byte("bgp"))),
		"eth_vlan_ipv4_udp": mk(eth(EtherTypeVLAN),
			&VLAN{Priority: 3, DropElig: true, VLANID: 100, EtherType: EtherTypeIPv4},
			ip4, udp, Raw([]byte("tagged"))),
		"eth_ipv6_icmp6": mk(eth(EtherTypeIPv6), ip6, icmp6, Raw([]byte{0xde, 0xad})),
		"eth_arp": mk(eth(EtherTypeARP), &ARP{
			Operation: 1,
			SenderMAC: MAC{0x02, 0, 0, 0, 0, 0x01}, SenderIP: MustParseIPv4("192.168.1.1"),
			TargetIP: MustParseIPv4("192.168.1.254"),
		}),
		"eth_ipv4_gre_ipv4": mk(eth(EtherTypeIPv4), greIP,
			&GRE{Protocol: EtherTypeIPv4}, inner, Raw([]byte("tunneled"))),
	}
}

// TestGoldenSerialize pins the serialized wire bytes of every canonical
// stack against its golden fixture.
func TestGoldenSerialize(t *testing.T) {
	for name, data := range goldenPackets(t) {
		goldenCompare(t, name, data)
	}
}

// TestGoldenRoundTrip: parsing a golden packet and re-serializing its
// decoded layers must reproduce the input byte for byte — lengths and
// checksums are recomputed, and since the input's were correct, the
// recomputation is the identity.
func TestGoldenRoundTrip(t *testing.T) {
	for name, data := range goldenPackets(t) {
		p := NewPacket(data, LayerTypeEthernet)
		if p.ErrorLayer() != nil {
			t.Fatalf("%s: parse: %v", name, p.ErrorLayer())
		}
		var layers []SerializableLayer
		for _, l := range p.Layers() {
			sl, ok := l.(SerializableLayer)
			if !ok {
				t.Fatalf("%s: layer %T is not serializable", name, l)
			}
			// Transport layers need the pseudo-header re-attached, as a
			// deparser would after a pipeline traversal.
			switch tl := l.(type) {
			case *TCP:
				tl.SetNetworkLayerForChecksum(p.IPv4().SrcIP[:], p.IPv4().DstIP[:])
			case *UDP:
				tl.SetNetworkLayerForChecksum(p.IPv4().SrcIP[:], p.IPv4().DstIP[:])
			case *ICMPv6:
				tl.SetNetworkLayerForChecksum(p.IPv6().SrcIP[:], p.IPv6().DstIP[:])
			}
			layers = append(layers, sl)
		}
		got, err := Serialize(SerializeOptions{FixLengths: true, ComputeChecksums: true}, layers...)
		if err != nil {
			t.Fatalf("%s: re-serialize: %v", name, err)
		}
		if !bytes.Equal(got, data) {
			t.Errorf("%s: round trip not identity\n got: %x\nwant: %x", name, got, data)
		}
	}
}

// TestGoldenRewriteChecksum: rewrite routed-packet headers the way the
// data plane does (MAC swap, TTL decrement), re-serialize, and pin the
// result — the IPv4 checksum must change and still verify, while the
// UDP checksum (which does not cover TTL or MACs) must not.
func TestGoldenRewriteChecksum(t *testing.T) {
	data := goldenPackets(t)["eth_ipv4_udp"]
	p := NewPacket(data, LayerTypeEthernet)
	if p.ErrorLayer() != nil {
		t.Fatal(p.ErrorLayer())
	}
	eth, ip := p.Ethernet(), p.IPv4()
	udp := p.Layer(LayerTypeUDP).(*UDP)
	origIPSum, origUDPSum := ip.Checksum, udp.Checksum

	eth.DstMAC = MAC{0x02, 0, 0, 0, 0x01, 0x01}
	eth.SrcMAC = MAC{0x02, 0, 0, 0, 0, 0xaa}
	ip.TTL--
	udp.SetNetworkLayerForChecksum(ip.SrcIP[:], ip.DstIP[:])
	pl := p.Layer(LayerTypePayload).(*Payload)
	got, err := Serialize(SerializeOptions{FixLengths: true, ComputeChecksums: true},
		eth, ip, udp, pl)
	if err != nil {
		t.Fatal(err)
	}
	goldenCompare(t, "eth_ipv4_udp_rewritten", got)

	if ip.Checksum == origIPSum {
		t.Error("IPv4 checksum unchanged by TTL rewrite")
	}
	// RFC 1071: the checksum of a header including its correct checksum
	// folds to zero.
	if s := internetChecksum(got[14:34], 0); s != 0 {
		t.Errorf("rewritten IPv4 header checksum does not verify: %#04x", s)
	}
	if udp.Checksum != origUDPSum {
		t.Errorf("UDP checksum changed from %#04x to %#04x; it covers neither TTL nor MACs", origUDPSum, udp.Checksum)
	}
}
