package packet

import (
	"encoding/binary"
	"fmt"
)

// IPv4Addr is a 32-bit IPv4 address.
type IPv4Addr [4]byte

func (a IPv4Addr) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", a[0], a[1], a[2], a[3])
}

// Uint32 returns the address as a big-endian integer.
func (a IPv4Addr) Uint32() uint32 { return binary.BigEndian.Uint32(a[:]) }

// IPv4AddrFromUint32 builds an address from a big-endian integer.
func IPv4AddrFromUint32(v uint32) IPv4Addr {
	var a IPv4Addr
	binary.BigEndian.PutUint32(a[:], v)
	return a
}

// ParseIPv4 parses dotted-quad notation.
func ParseIPv4(s string) (IPv4Addr, error) {
	var a IPv4Addr
	bad := func() (IPv4Addr, error) {
		return IPv4Addr{}, fmt.Errorf("packet: invalid IPv4 address %q", s)
	}
	octet := 0
	val, digits := 0, 0
	for i := 0; i < len(s); i++ {
		switch c := s[i]; {
		case c >= '0' && c <= '9':
			val = val*10 + int(c-'0')
			digits++
			if digits > 3 || val > 255 {
				return bad()
			}
		case c == '.':
			if digits == 0 || octet == 3 {
				return bad()
			}
			a[octet] = byte(val)
			octet++
			val, digits = 0, 0
		default:
			return bad()
		}
	}
	if octet != 3 || digits == 0 {
		return bad()
	}
	a[3] = byte(val)
	return a, nil
}

// MustParseIPv4 is ParseIPv4 for tests and static data; it panics on error.
func MustParseIPv4(s string) IPv4Addr {
	a, err := ParseIPv4(s)
	if err != nil {
		panic(err)
	}
	return a
}

// IPv4 is an IPv4 header without options.
type IPv4 struct {
	TOS        uint8 // DSCP (6 bits) + ECN (2 bits)
	Length     uint16
	ID         uint16
	Flags      uint8 // 3 bits
	FragOffset uint16
	TTL        uint8
	Protocol   uint8
	Checksum   uint16
	SrcIP      IPv4Addr
	DstIP      IPv4Addr
}

// DSCP returns the 6-bit differentiated services codepoint.
func (ip *IPv4) DSCP() uint8 { return ip.TOS >> 2 }

// SetDSCP sets the 6-bit DSCP, preserving ECN.
func (ip *IPv4) SetDSCP(d uint8) { ip.TOS = d<<2 | ip.TOS&0x3 }

// LayerType implements Layer.
func (*IPv4) LayerType() LayerType { return LayerTypeIPv4 }

// NextLayerType implements Layer.
func (ip *IPv4) NextLayerType() LayerType { return layerTypeForIPProtocol(ip.Protocol) }

// DecodeFromBytes implements Layer.
func (ip *IPv4) DecodeFromBytes(data []byte) ([]byte, error) {
	if len(data) < 20 {
		return nil, fmt.Errorf("packet: IPv4 header truncated: %d bytes", len(data))
	}
	if v := data[0] >> 4; v != 4 {
		return nil, fmt.Errorf("packet: IPv4 version field is %d", v)
	}
	ihl := int(data[0]&0x0f) * 4
	if ihl < 20 || len(data) < ihl {
		return nil, fmt.Errorf("packet: IPv4 IHL %d invalid for %d bytes", ihl, len(data))
	}
	ip.TOS = data[1]
	ip.Length = binary.BigEndian.Uint16(data[2:4])
	ip.ID = binary.BigEndian.Uint16(data[4:6])
	flagsFrag := binary.BigEndian.Uint16(data[6:8])
	ip.Flags = uint8(flagsFrag >> 13)
	ip.FragOffset = flagsFrag & 0x1fff
	ip.TTL = data[8]
	ip.Protocol = data[9]
	ip.Checksum = binary.BigEndian.Uint16(data[10:12])
	copy(ip.SrcIP[:], data[12:16])
	copy(ip.DstIP[:], data[16:20])
	if int(ip.Length) >= ihl && int(ip.Length) <= len(data) {
		return data[ihl:ip.Length], nil
	}
	return data[ihl:], nil
}

// SerializeTo implements SerializableLayer.
func (ip *IPv4) SerializeTo(b *SerializeBuffer, opts SerializeOptions) error {
	payloadLen := len(b.Bytes())
	hdr := b.PrependBytes(20)
	if opts.FixLengths {
		ip.Length = uint16(20 + payloadLen)
	}
	hdr[0] = 4<<4 | 5 // version 4, IHL 5 words
	hdr[1] = ip.TOS
	binary.BigEndian.PutUint16(hdr[2:4], ip.Length)
	binary.BigEndian.PutUint16(hdr[4:6], ip.ID)
	binary.BigEndian.PutUint16(hdr[6:8], uint16(ip.Flags)<<13|ip.FragOffset&0x1fff)
	hdr[8] = ip.TTL
	hdr[9] = ip.Protocol
	binary.BigEndian.PutUint16(hdr[10:12], 0)
	copy(hdr[12:16], ip.SrcIP[:])
	copy(hdr[16:20], ip.DstIP[:])
	if opts.ComputeChecksums {
		ip.Checksum = internetChecksum(hdr, 0)
	}
	binary.BigEndian.PutUint16(hdr[10:12], ip.Checksum)
	return nil
}

// IPv6Addr is a 128-bit IPv6 address.
type IPv6Addr [16]byte

func (a IPv6Addr) String() string {
	out := ""
	for i := 0; i < 16; i += 2 {
		if i > 0 {
			out += ":"
		}
		out += fmt.Sprintf("%x", binary.BigEndian.Uint16(a[i:]))
	}
	return out
}

// ParseIPv6 parses the full 8-group colon-separated form, with "::"
// supported for a single run of zero groups.
func ParseIPv6(s string) (IPv6Addr, error) {
	var a IPv6Addr
	groups, err := splitIPv6Groups(s)
	if err != nil {
		return IPv6Addr{}, err
	}
	for i, g := range groups {
		binary.BigEndian.PutUint16(a[i*2:], g)
	}
	return a, nil
}

// MustParseIPv6 is ParseIPv6 for tests and static data; it panics on error.
func MustParseIPv6(s string) IPv6Addr {
	a, err := ParseIPv6(s)
	if err != nil {
		panic(err)
	}
	return a
}

func splitIPv6Groups(s string) ([8]uint16, error) {
	var groups [8]uint16
	parseGroup := func(g string) (uint16, error) {
		if g == "" || len(g) > 4 {
			return 0, fmt.Errorf("packet: invalid IPv6 group %q in %q", g, s)
		}
		var v uint16
		for _, c := range g {
			var d uint16
			switch {
			case c >= '0' && c <= '9':
				d = uint16(c - '0')
			case c >= 'a' && c <= 'f':
				d = uint16(c-'a') + 10
			case c >= 'A' && c <= 'F':
				d = uint16(c-'A') + 10
			default:
				return 0, fmt.Errorf("packet: invalid IPv6 group %q in %q", g, s)
			}
			v = v<<4 | d
		}
		return v, nil
	}
	split := func(part string) ([]string, error) {
		if part == "" {
			return nil, nil
		}
		var out []string
		start := 0
		for i := 0; i <= len(part); i++ {
			if i == len(part) || part[i] == ':' {
				out = append(out, part[start:i])
				start = i + 1
			}
		}
		return out, nil
	}
	// Handle "::" compression.
	var left, right []string
	for i := 0; i+1 < len(s); i++ {
		if s[i] == ':' && s[i+1] == ':' {
			l, _ := split(s[:i])
			r, _ := split(s[i+2:])
			left, right = l, r
			if len(left)+len(right) >= 8 {
				return groups, fmt.Errorf("packet: invalid IPv6 address %q", s)
			}
			goto parse
		}
	}
	{
		parts, _ := split(s)
		if len(parts) != 8 {
			return groups, fmt.Errorf("packet: invalid IPv6 address %q", s)
		}
		left, right = parts, nil
	}
parse:
	for i, g := range left {
		v, err := parseGroup(g)
		if err != nil {
			return groups, err
		}
		groups[i] = v
	}
	for i, g := range right {
		v, err := parseGroup(g)
		if err != nil {
			return groups, err
		}
		groups[8-len(right)+i] = v
	}
	return groups, nil
}

// IPv6 is an IPv6 fixed header.
type IPv6 struct {
	TrafficClass uint8
	FlowLabel    uint32 // 20 bits
	Length       uint16 // payload length
	NextHeader   uint8
	HopLimit     uint8
	SrcIP        IPv6Addr
	DstIP        IPv6Addr
}

// DSCP returns the 6-bit differentiated services codepoint.
func (ip *IPv6) DSCP() uint8 { return ip.TrafficClass >> 2 }

// LayerType implements Layer.
func (*IPv6) LayerType() LayerType { return LayerTypeIPv6 }

// NextLayerType implements Layer.
func (ip *IPv6) NextLayerType() LayerType { return layerTypeForIPProtocol(ip.NextHeader) }

// DecodeFromBytes implements Layer.
func (ip *IPv6) DecodeFromBytes(data []byte) ([]byte, error) {
	if len(data) < 40 {
		return nil, fmt.Errorf("packet: IPv6 header truncated: %d bytes", len(data))
	}
	if v := data[0] >> 4; v != 6 {
		return nil, fmt.Errorf("packet: IPv6 version field is %d", v)
	}
	ip.TrafficClass = data[0]<<4 | data[1]>>4
	ip.FlowLabel = uint32(data[1]&0x0f)<<16 | uint32(data[2])<<8 | uint32(data[3])
	ip.Length = binary.BigEndian.Uint16(data[4:6])
	ip.NextHeader = data[6]
	ip.HopLimit = data[7]
	copy(ip.SrcIP[:], data[8:24])
	copy(ip.DstIP[:], data[24:40])
	if int(ip.Length) <= len(data)-40 {
		return data[40 : 40+ip.Length], nil
	}
	return data[40:], nil
}

// SerializeTo implements SerializableLayer.
func (ip *IPv6) SerializeTo(b *SerializeBuffer, opts SerializeOptions) error {
	payloadLen := len(b.Bytes())
	hdr := b.PrependBytes(40)
	if opts.FixLengths {
		ip.Length = uint16(payloadLen)
	}
	hdr[0] = 6<<4 | ip.TrafficClass>>4
	hdr[1] = ip.TrafficClass<<4 | uint8(ip.FlowLabel>>16)&0x0f
	hdr[2] = uint8(ip.FlowLabel >> 8)
	hdr[3] = uint8(ip.FlowLabel)
	binary.BigEndian.PutUint16(hdr[4:6], ip.Length)
	hdr[6] = ip.NextHeader
	hdr[7] = ip.HopLimit
	copy(hdr[8:24], ip.SrcIP[:])
	copy(hdr[24:40], ip.DstIP[:])
	return nil
}
