package packet

// SerializeOptions controls layer serialization.
type SerializeOptions struct {
	// FixLengths recomputes length fields (IPv4 total length, UDP length,
	// IPv6 payload length) from the actual payload sizes.
	FixLengths bool
	// ComputeChecksums recomputes checksums (IPv4 header, TCP, UDP,
	// ICMPv4, ICMPv6).
	ComputeChecksums bool
}

// SerializeBuffer accumulates packet bytes with cheap prepending, so layers
// can be serialized innermost-first (payload, then TCP, then IP, then
// Ethernet), each treating the current contents as its payload.
type SerializeBuffer struct {
	buf   []byte
	start int
}

// NewSerializeBuffer returns an empty buffer ready for use.
func NewSerializeBuffer() *SerializeBuffer {
	const headroom = 128
	return &SerializeBuffer{buf: make([]byte, headroom, headroom+64), start: headroom}
}

// Bytes returns the accumulated packet bytes.
func (b *SerializeBuffer) Bytes() []byte { return b.buf[b.start:] }

// PrependBytes reserves n bytes at the front of the buffer and returns the
// slice to fill in.
func (b *SerializeBuffer) PrependBytes(n int) []byte {
	if b.start < n {
		grow := n - b.start + 256
		nbuf := make([]byte, len(b.buf)+grow)
		copy(nbuf[grow:], b.buf)
		b.buf = nbuf
		b.start += grow
	}
	b.start -= n
	return b.buf[b.start : b.start+n]
}

// AppendBytes reserves n bytes at the end of the buffer and returns the
// slice to fill in.
func (b *SerializeBuffer) AppendBytes(n int) []byte {
	old := len(b.buf)
	b.buf = append(b.buf, make([]byte, n)...)
	return b.buf[old:]
}

// Clear resets the buffer to empty, retaining capacity.
func (b *SerializeBuffer) Clear() {
	b.start = len(b.buf)
}

// SerializeLayers clears b then serializes the given layers in reverse
// order, producing a complete packet in b.
func SerializeLayers(b *SerializeBuffer, opts SerializeOptions, layers ...SerializableLayer) error {
	b.Clear()
	for i := len(layers) - 1; i >= 0; i-- {
		if err := layers[i].SerializeTo(b, opts); err != nil {
			return err
		}
	}
	return nil
}

// Serialize is a convenience wrapper that serializes layers into a fresh
// buffer and returns the packet bytes.
func Serialize(opts SerializeOptions, layers ...SerializableLayer) ([]byte, error) {
	b := NewSerializeBuffer()
	if err := SerializeLayers(b, opts, layers...); err != nil {
		return nil, err
	}
	out := make([]byte, len(b.Bytes()))
	copy(out, b.Bytes())
	return out, nil
}
