// Package packet implements decoding and serialization of the network
// protocol layers that SwitchV's data-plane validation exercises.
//
// The design follows the layer-based model popularized by gopacket: a raw
// []byte is decoded into a stack of Layers, and packets are built by
// serializing layers in reverse order into a prepend-oriented
// SerializeBuffer. Only the protocols needed to model SAI-style forwarding
// pipelines are implemented: Ethernet, 802.1Q VLAN, ARP, IPv4, IPv6, TCP,
// UDP, ICMPv4, ICMPv6, and GRE (for encap/decap pipelines).
package packet

import "fmt"

// LayerType identifies a protocol layer within a packet.
type LayerType int

// Known layer types.
const (
	LayerTypeZero LayerType = iota
	LayerTypeEthernet
	LayerTypeVLAN
	LayerTypeARP
	LayerTypeIPv4
	LayerTypeIPv6
	LayerTypeTCP
	LayerTypeUDP
	LayerTypeICMPv4
	LayerTypeICMPv6
	LayerTypeGRE
	LayerTypePayload
)

var layerTypeNames = map[LayerType]string{
	LayerTypeZero:     "Zero",
	LayerTypeEthernet: "Ethernet",
	LayerTypeVLAN:     "VLAN",
	LayerTypeARP:      "ARP",
	LayerTypeIPv4:     "IPv4",
	LayerTypeIPv6:     "IPv6",
	LayerTypeTCP:      "TCP",
	LayerTypeUDP:      "UDP",
	LayerTypeICMPv4:   "ICMPv4",
	LayerTypeICMPv6:   "ICMPv6",
	LayerTypeGRE:      "GRE",
	LayerTypePayload:  "Payload",
}

func (t LayerType) String() string {
	if s, ok := layerTypeNames[t]; ok {
		return s
	}
	return fmt.Sprintf("LayerType(%d)", int(t))
}

// Layer is a single decoded protocol layer.
type Layer interface {
	// LayerType reports which protocol this layer represents.
	LayerType() LayerType
	// DecodeFromBytes parses the layer from the front of data and returns
	// the remaining payload bytes.
	DecodeFromBytes(data []byte) (payload []byte, err error)
	// NextLayerType reports the type of the layer carried in the payload,
	// or LayerTypePayload if unknown/opaque.
	NextLayerType() LayerType
}

// SerializableLayer is a Layer that can be written into a SerializeBuffer.
type SerializableLayer interface {
	Layer
	// SerializeTo prepends this layer's wire representation onto b. The
	// current contents of b are treated as this layer's payload.
	SerializeTo(b *SerializeBuffer, opts SerializeOptions) error
}

// EtherType values used by the pipelines we model.
const (
	EtherTypeIPv4 uint16 = 0x0800
	EtherTypeARP  uint16 = 0x0806
	EtherTypeVLAN uint16 = 0x8100
	EtherTypeIPv6 uint16 = 0x86DD
)

// IP protocol numbers used by the pipelines we model.
const (
	IPProtocolICMPv4 uint8 = 1
	IPProtocolTCP    uint8 = 6
	IPProtocolUDP    uint8 = 17
	IPProtocolGRE    uint8 = 47
	IPProtocolICMPv6 uint8 = 58
)

// layerTypeForEtherType maps an EtherType to the layer that decodes it.
func layerTypeForEtherType(et uint16) LayerType {
	switch et {
	case EtherTypeIPv4:
		return LayerTypeIPv4
	case EtherTypeARP:
		return LayerTypeARP
	case EtherTypeVLAN:
		return LayerTypeVLAN
	case EtherTypeIPv6:
		return LayerTypeIPv6
	default:
		return LayerTypePayload
	}
}

// layerTypeForIPProtocol maps an IP protocol number to the layer that
// decodes it.
func layerTypeForIPProtocol(p uint8) LayerType {
	switch p {
	case IPProtocolICMPv4:
		return LayerTypeICMPv4
	case IPProtocolTCP:
		return LayerTypeTCP
	case IPProtocolUDP:
		return LayerTypeUDP
	case IPProtocolGRE:
		return LayerTypeGRE
	case IPProtocolICMPv6:
		return LayerTypeICMPv6
	default:
		return LayerTypePayload
	}
}
