package packet

import (
	"encoding/binary"
	"fmt"
)

// TCP is a TCP header without options.
type TCP struct {
	SrcPort  uint16
	DstPort  uint16
	Seq      uint32
	Ack      uint32
	Flags    uint8 // FIN, SYN, RST, PSH, ACK, URG bits, low to high
	Window   uint16
	Checksum uint16
	Urgent   uint16

	// pseudo-header inputs, set during decode or by the enclosing IP layer
	// during serialization.
	srcIP, dstIP []byte
}

// TCP flag bits.
const (
	TCPFin uint8 = 1 << iota
	TCPSyn
	TCPRst
	TCPPsh
	TCPAck
	TCPUrg
)

// LayerType implements Layer.
func (*TCP) LayerType() LayerType { return LayerTypeTCP }

// NextLayerType implements Layer.
func (*TCP) NextLayerType() LayerType { return LayerTypePayload }

// SetNetworkLayerForChecksum records the IP endpoints used by the TCP/UDP
// pseudo header when serializing with ComputeChecksums.
func (t *TCP) SetNetworkLayerForChecksum(src, dst []byte) {
	t.srcIP, t.dstIP = src, dst
}

// DecodeFromBytes implements Layer.
func (t *TCP) DecodeFromBytes(data []byte) ([]byte, error) {
	if len(data) < 20 {
		return nil, fmt.Errorf("packet: TCP header truncated: %d bytes", len(data))
	}
	t.SrcPort = binary.BigEndian.Uint16(data[0:2])
	t.DstPort = binary.BigEndian.Uint16(data[2:4])
	t.Seq = binary.BigEndian.Uint32(data[4:8])
	t.Ack = binary.BigEndian.Uint32(data[8:12])
	dataOff := int(data[12]>>4) * 4
	if dataOff < 20 || len(data) < dataOff {
		return nil, fmt.Errorf("packet: TCP data offset %d invalid for %d bytes", dataOff, len(data))
	}
	t.Flags = data[13]
	t.Window = binary.BigEndian.Uint16(data[14:16])
	t.Checksum = binary.BigEndian.Uint16(data[16:18])
	t.Urgent = binary.BigEndian.Uint16(data[18:20])
	return data[dataOff:], nil
}

// SerializeTo implements SerializableLayer.
func (t *TCP) SerializeTo(b *SerializeBuffer, opts SerializeOptions) error {
	payloadLen := len(b.Bytes())
	hdr := b.PrependBytes(20)
	binary.BigEndian.PutUint16(hdr[0:2], t.SrcPort)
	binary.BigEndian.PutUint16(hdr[2:4], t.DstPort)
	binary.BigEndian.PutUint32(hdr[4:8], t.Seq)
	binary.BigEndian.PutUint32(hdr[8:12], t.Ack)
	hdr[12] = 5 << 4 // data offset: 5 words
	hdr[13] = t.Flags
	binary.BigEndian.PutUint16(hdr[14:16], t.Window)
	binary.BigEndian.PutUint16(hdr[16:18], 0)
	binary.BigEndian.PutUint16(hdr[18:20], t.Urgent)
	if opts.ComputeChecksums && t.srcIP != nil {
		sum := pseudoHeaderSum(t.srcIP, t.dstIP, IPProtocolTCP, 20+payloadLen)
		t.Checksum = internetChecksum(b.Bytes(), sum)
	}
	binary.BigEndian.PutUint16(hdr[16:18], t.Checksum)
	return nil
}

// UDP is a UDP header.
type UDP struct {
	SrcPort  uint16
	DstPort  uint16
	Length   uint16
	Checksum uint16

	srcIP, dstIP []byte
}

// LayerType implements Layer.
func (*UDP) LayerType() LayerType { return LayerTypeUDP }

// NextLayerType implements Layer.
func (*UDP) NextLayerType() LayerType { return LayerTypePayload }

// SetNetworkLayerForChecksum records the IP endpoints used by the pseudo
// header when serializing with ComputeChecksums.
func (u *UDP) SetNetworkLayerForChecksum(src, dst []byte) {
	u.srcIP, u.dstIP = src, dst
}

// DecodeFromBytes implements Layer.
func (u *UDP) DecodeFromBytes(data []byte) ([]byte, error) {
	if len(data) < 8 {
		return nil, fmt.Errorf("packet: UDP header truncated: %d bytes", len(data))
	}
	u.SrcPort = binary.BigEndian.Uint16(data[0:2])
	u.DstPort = binary.BigEndian.Uint16(data[2:4])
	u.Length = binary.BigEndian.Uint16(data[4:6])
	u.Checksum = binary.BigEndian.Uint16(data[6:8])
	return data[8:], nil
}

// SerializeTo implements SerializableLayer.
func (u *UDP) SerializeTo(b *SerializeBuffer, opts SerializeOptions) error {
	payloadLen := len(b.Bytes())
	hdr := b.PrependBytes(8)
	if opts.FixLengths {
		u.Length = uint16(8 + payloadLen)
	}
	binary.BigEndian.PutUint16(hdr[0:2], u.SrcPort)
	binary.BigEndian.PutUint16(hdr[2:4], u.DstPort)
	binary.BigEndian.PutUint16(hdr[4:6], u.Length)
	binary.BigEndian.PutUint16(hdr[6:8], 0)
	if opts.ComputeChecksums && u.srcIP != nil {
		sum := pseudoHeaderSum(u.srcIP, u.dstIP, IPProtocolUDP, 8+payloadLen)
		u.Checksum = internetChecksum(b.Bytes(), sum)
		if u.Checksum == 0 {
			u.Checksum = 0xffff // RFC 768: transmitted as all-ones
		}
	}
	binary.BigEndian.PutUint16(hdr[6:8], u.Checksum)
	return nil
}

// ICMPv4 is an ICMP for IPv4 header.
type ICMPv4 struct {
	Type     uint8
	Code     uint8
	Checksum uint16
	RestOf   uint32 // identifier/sequence or unused, type-dependent
}

// LayerType implements Layer.
func (*ICMPv4) LayerType() LayerType { return LayerTypeICMPv4 }

// NextLayerType implements Layer.
func (*ICMPv4) NextLayerType() LayerType { return LayerTypePayload }

// DecodeFromBytes implements Layer.
func (ic *ICMPv4) DecodeFromBytes(data []byte) ([]byte, error) {
	if len(data) < 8 {
		return nil, fmt.Errorf("packet: ICMPv4 header truncated: %d bytes", len(data))
	}
	ic.Type = data[0]
	ic.Code = data[1]
	ic.Checksum = binary.BigEndian.Uint16(data[2:4])
	ic.RestOf = binary.BigEndian.Uint32(data[4:8])
	return data[8:], nil
}

// SerializeTo implements SerializableLayer.
func (ic *ICMPv4) SerializeTo(b *SerializeBuffer, opts SerializeOptions) error {
	hdr := b.PrependBytes(8)
	hdr[0] = ic.Type
	hdr[1] = ic.Code
	binary.BigEndian.PutUint16(hdr[2:4], 0)
	binary.BigEndian.PutUint32(hdr[4:8], ic.RestOf)
	if opts.ComputeChecksums {
		ic.Checksum = internetChecksum(b.Bytes(), 0)
	}
	binary.BigEndian.PutUint16(hdr[2:4], ic.Checksum)
	return nil
}

// ICMPv6 is an ICMPv6 header.
type ICMPv6 struct {
	Type     uint8
	Code     uint8
	Checksum uint16
	RestOf   uint32

	srcIP, dstIP []byte
}

// ICMPv6 types used by the switch-Linux daemon simulation.
const (
	ICMPv6TypeRouterSolicitation  uint8 = 133
	ICMPv6TypeRouterAdvertisement uint8 = 134
	ICMPv6TypeNeighborSolicit     uint8 = 135
	ICMPv6TypeNeighborAdvert      uint8 = 136
)

// LayerType implements Layer.
func (*ICMPv6) LayerType() LayerType { return LayerTypeICMPv6 }

// NextLayerType implements Layer.
func (*ICMPv6) NextLayerType() LayerType { return LayerTypePayload }

// SetNetworkLayerForChecksum records the IPv6 endpoints used by the pseudo
// header when serializing with ComputeChecksums.
func (ic *ICMPv6) SetNetworkLayerForChecksum(src, dst []byte) {
	ic.srcIP, ic.dstIP = src, dst
}

// DecodeFromBytes implements Layer.
func (ic *ICMPv6) DecodeFromBytes(data []byte) ([]byte, error) {
	if len(data) < 8 {
		return nil, fmt.Errorf("packet: ICMPv6 header truncated: %d bytes", len(data))
	}
	ic.Type = data[0]
	ic.Code = data[1]
	ic.Checksum = binary.BigEndian.Uint16(data[2:4])
	ic.RestOf = binary.BigEndian.Uint32(data[4:8])
	return data[8:], nil
}

// SerializeTo implements SerializableLayer.
func (ic *ICMPv6) SerializeTo(b *SerializeBuffer, opts SerializeOptions) error {
	payloadLen := len(b.Bytes())
	hdr := b.PrependBytes(8)
	hdr[0] = ic.Type
	hdr[1] = ic.Code
	binary.BigEndian.PutUint16(hdr[2:4], 0)
	binary.BigEndian.PutUint32(hdr[4:8], ic.RestOf)
	if opts.ComputeChecksums && ic.srcIP != nil {
		sum := pseudoHeaderSum(ic.srcIP, ic.dstIP, IPProtocolICMPv6, 8+payloadLen)
		ic.Checksum = internetChecksum(b.Bytes(), sum)
	}
	binary.BigEndian.PutUint16(hdr[2:4], ic.Checksum)
	return nil
}

// GRE is a basic GRE header (RFC 2784, no optional fields).
type GRE struct {
	Protocol uint16 // EtherType of the encapsulated payload
}

// LayerType implements Layer.
func (*GRE) LayerType() LayerType { return LayerTypeGRE }

// NextLayerType implements Layer.
func (g *GRE) NextLayerType() LayerType { return layerTypeForEtherType(g.Protocol) }

// DecodeFromBytes implements Layer.
func (g *GRE) DecodeFromBytes(data []byte) ([]byte, error) {
	if len(data) < 4 {
		return nil, fmt.Errorf("packet: GRE header truncated: %d bytes", len(data))
	}
	if flags := binary.BigEndian.Uint16(data[0:2]); flags != 0 {
		return nil, fmt.Errorf("packet: GRE optional fields not supported (flags %#04x)", flags)
	}
	g.Protocol = binary.BigEndian.Uint16(data[2:4])
	return data[4:], nil
}

// SerializeTo implements SerializableLayer.
func (g *GRE) SerializeTo(b *SerializeBuffer, _ SerializeOptions) error {
	hdr := b.PrependBytes(4)
	binary.BigEndian.PutUint16(hdr[0:2], 0)
	binary.BigEndian.PutUint16(hdr[2:4], g.Protocol)
	return nil
}

// Payload is the opaque innermost application bytes.
type Payload []byte

// Raw returns a Payload layer over b, convenient for Serialize calls.
func Raw(b []byte) *Payload {
	p := Payload(b)
	return &p
}

// LayerType implements Layer.
func (*Payload) LayerType() LayerType { return LayerTypePayload }

// NextLayerType implements Layer.
func (*Payload) NextLayerType() LayerType { return LayerTypeZero }

// DecodeFromBytes implements Layer.
func (p *Payload) DecodeFromBytes(data []byte) ([]byte, error) {
	*p = append((*p)[:0], data...)
	return nil, nil
}

// SerializeTo implements SerializableLayer.
func (p *Payload) SerializeTo(b *SerializeBuffer, _ SerializeOptions) error {
	copy(b.PrependBytes(len(*p)), *p)
	return nil
}
