package packet

import "encoding/binary"

// internetChecksum computes the RFC 1071 internet checksum over data with an
// initial partial sum. The returned value is the final folded, complemented
// 16-bit checksum.
func internetChecksum(data []byte, initial uint32) uint16 {
	sum := initial
	for len(data) >= 2 {
		sum += uint32(binary.BigEndian.Uint16(data))
		data = data[2:]
	}
	if len(data) == 1 {
		sum += uint32(data[0]) << 8
	}
	for sum>>16 != 0 {
		sum = (sum & 0xffff) + (sum >> 16)
	}
	return ^uint16(sum)
}

// pseudoHeaderSum computes the partial checksum of an IPv4/IPv6 pseudo
// header for the given transport protocol and length.
func pseudoHeaderSum(src, dst []byte, proto uint8, length int) uint32 {
	var sum uint32
	for i := 0; i+1 < len(src); i += 2 {
		sum += uint32(binary.BigEndian.Uint16(src[i:]))
	}
	for i := 0; i+1 < len(dst); i += 2 {
		sum += uint32(binary.BigEndian.Uint16(dst[i:]))
	}
	sum += uint32(proto)
	sum += uint32(length)
	return sum
}

// InternetChecksum exposes internetChecksum for hand-rolled serializers
// (the compiled engine's flat deparser) that must produce byte-identical
// output to SerializeLayers.
func InternetChecksum(data []byte, initial uint32) uint16 {
	return internetChecksum(data, initial)
}

// PseudoHeaderSum exposes pseudoHeaderSum for the same purpose.
func PseudoHeaderSum(src, dst []byte, proto uint8, length int) uint32 {
	return pseudoHeaderSum(src, dst, proto, length)
}
