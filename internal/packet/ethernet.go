package packet

import (
	"encoding/binary"
	"fmt"
)

// MAC is a 48-bit Ethernet address. A fixed-size array keeps it comparable
// and usable as a map key.
type MAC [6]byte

func (m MAC) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", m[0], m[1], m[2], m[3], m[4], m[5])
}

// ParseMAC parses a colon-separated MAC address.
func ParseMAC(s string) (MAC, error) {
	var m MAC
	n, err := fmt.Sscanf(s, "%02x:%02x:%02x:%02x:%02x:%02x", &m[0], &m[1], &m[2], &m[3], &m[4], &m[5])
	if err != nil || n != 6 {
		return MAC{}, fmt.Errorf("packet: invalid MAC address %q", s)
	}
	return m, nil
}

// IsMulticast reports whether the address has the group bit set.
func (m MAC) IsMulticast() bool { return m[0]&1 == 1 }

// Ethernet is a IEEE 802.3 Ethernet II frame header.
type Ethernet struct {
	DstMAC    MAC
	SrcMAC    MAC
	EtherType uint16
}

// LayerType implements Layer.
func (*Ethernet) LayerType() LayerType { return LayerTypeEthernet }

// NextLayerType implements Layer.
func (e *Ethernet) NextLayerType() LayerType { return layerTypeForEtherType(e.EtherType) }

// DecodeFromBytes implements Layer.
func (e *Ethernet) DecodeFromBytes(data []byte) ([]byte, error) {
	if len(data) < 14 {
		return nil, fmt.Errorf("packet: Ethernet header truncated: %d bytes", len(data))
	}
	copy(e.DstMAC[:], data[0:6])
	copy(e.SrcMAC[:], data[6:12])
	e.EtherType = binary.BigEndian.Uint16(data[12:14])
	return data[14:], nil
}

// SerializeTo implements SerializableLayer.
func (e *Ethernet) SerializeTo(b *SerializeBuffer, _ SerializeOptions) error {
	hdr := b.PrependBytes(14)
	copy(hdr[0:6], e.DstMAC[:])
	copy(hdr[6:12], e.SrcMAC[:])
	binary.BigEndian.PutUint16(hdr[12:14], e.EtherType)
	return nil
}

// VLAN is an 802.1Q tag.
type VLAN struct {
	Priority  uint8 // 3 bits
	DropElig  bool
	VLANID    uint16 // 12 bits
	EtherType uint16
}

// LayerType implements Layer.
func (*VLAN) LayerType() LayerType { return LayerTypeVLAN }

// NextLayerType implements Layer.
func (v *VLAN) NextLayerType() LayerType { return layerTypeForEtherType(v.EtherType) }

// DecodeFromBytes implements Layer.
func (v *VLAN) DecodeFromBytes(data []byte) ([]byte, error) {
	if len(data) < 4 {
		return nil, fmt.Errorf("packet: VLAN tag truncated: %d bytes", len(data))
	}
	tci := binary.BigEndian.Uint16(data[0:2])
	v.Priority = uint8(tci >> 13)
	v.DropElig = tci&0x1000 != 0
	v.VLANID = tci & 0x0fff
	v.EtherType = binary.BigEndian.Uint16(data[2:4])
	return data[4:], nil
}

// SerializeTo implements SerializableLayer.
func (v *VLAN) SerializeTo(b *SerializeBuffer, _ SerializeOptions) error {
	if v.Priority > 7 {
		return fmt.Errorf("packet: VLAN priority %d out of range", v.Priority)
	}
	if v.VLANID > 0x0fff {
		return fmt.Errorf("packet: VLAN ID %d out of range", v.VLANID)
	}
	hdr := b.PrependBytes(4)
	tci := uint16(v.Priority)<<13 | v.VLANID
	if v.DropElig {
		tci |= 0x1000
	}
	binary.BigEndian.PutUint16(hdr[0:2], tci)
	binary.BigEndian.PutUint16(hdr[2:4], v.EtherType)
	return nil
}

// ARP is an Address Resolution Protocol message for Ethernet/IPv4.
type ARP struct {
	Operation uint16 // 1 = request, 2 = reply
	SenderMAC MAC
	SenderIP  IPv4Addr
	TargetMAC MAC
	TargetIP  IPv4Addr
}

// LayerType implements Layer.
func (*ARP) LayerType() LayerType { return LayerTypeARP }

// NextLayerType implements Layer.
func (*ARP) NextLayerType() LayerType { return LayerTypePayload }

// DecodeFromBytes implements Layer.
func (a *ARP) DecodeFromBytes(data []byte) ([]byte, error) {
	if len(data) < 28 {
		return nil, fmt.Errorf("packet: ARP message truncated: %d bytes", len(data))
	}
	if htype := binary.BigEndian.Uint16(data[0:2]); htype != 1 {
		return nil, fmt.Errorf("packet: unsupported ARP hardware type %d", htype)
	}
	if ptype := binary.BigEndian.Uint16(data[2:4]); ptype != EtherTypeIPv4 {
		return nil, fmt.Errorf("packet: unsupported ARP protocol type %#04x", ptype)
	}
	a.Operation = binary.BigEndian.Uint16(data[6:8])
	copy(a.SenderMAC[:], data[8:14])
	copy(a.SenderIP[:], data[14:18])
	copy(a.TargetMAC[:], data[18:24])
	copy(a.TargetIP[:], data[24:28])
	return data[28:], nil
}

// SerializeTo implements SerializableLayer.
func (a *ARP) SerializeTo(b *SerializeBuffer, _ SerializeOptions) error {
	hdr := b.PrependBytes(28)
	binary.BigEndian.PutUint16(hdr[0:2], 1) // Ethernet
	binary.BigEndian.PutUint16(hdr[2:4], EtherTypeIPv4)
	hdr[4] = 6 // hardware address length
	hdr[5] = 4 // protocol address length
	binary.BigEndian.PutUint16(hdr[6:8], a.Operation)
	copy(hdr[8:14], a.SenderMAC[:])
	copy(hdr[14:18], a.SenderIP[:])
	copy(hdr[18:24], a.TargetMAC[:])
	copy(hdr[24:28], a.TargetIP[:])
	return nil
}
