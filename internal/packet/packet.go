package packet

import (
	"fmt"
	"strings"
)

// Packet is a fully decoded stack of layers.
type Packet struct {
	data   []byte
	layers []Layer
	err    error
}

// NewPacket eagerly decodes data starting from the given first layer type.
// Decoding errors do not abort the packet: the layers decoded so far are
// retained and the error is available via ErrorLayer, mirroring gopacket's
// behavior of salvaging outer layers from inner corruption.
func NewPacket(data []byte, first LayerType) *Packet {
	p := &Packet{data: append([]byte(nil), data...)}
	rest := p.data
	next := first
	for next != LayerTypeZero && len(rest) > 0 {
		layer := newLayer(next)
		if layer == nil {
			layer = new(Payload)
		}
		payload, err := layer.DecodeFromBytes(rest)
		if err != nil {
			p.err = err
			return p
		}
		p.layers = append(p.layers, layer)
		rest = payload
		next = layer.NextLayerType()
	}
	return p
}

func newLayer(t LayerType) Layer {
	switch t {
	case LayerTypeEthernet:
		return new(Ethernet)
	case LayerTypeVLAN:
		return new(VLAN)
	case LayerTypeARP:
		return new(ARP)
	case LayerTypeIPv4:
		return new(IPv4)
	case LayerTypeIPv6:
		return new(IPv6)
	case LayerTypeTCP:
		return new(TCP)
	case LayerTypeUDP:
		return new(UDP)
	case LayerTypeICMPv4:
		return new(ICMPv4)
	case LayerTypeICMPv6:
		return new(ICMPv6)
	case LayerTypeGRE:
		return new(GRE)
	case LayerTypePayload:
		return new(Payload)
	default:
		return nil
	}
}

// Data returns the raw packet bytes.
func (p *Packet) Data() []byte { return p.data }

// Layers returns all decoded layers, outermost first.
func (p *Packet) Layers() []Layer { return p.layers }

// Layer returns the first layer of the given type, or nil.
func (p *Packet) Layer(t LayerType) Layer {
	for _, l := range p.layers {
		if l.LayerType() == t {
			return l
		}
	}
	return nil
}

// ErrorLayer returns the decode error encountered, if any.
func (p *Packet) ErrorLayer() error { return p.err }

// Ethernet returns the Ethernet layer, or nil.
func (p *Packet) Ethernet() *Ethernet {
	if l := p.Layer(LayerTypeEthernet); l != nil {
		return l.(*Ethernet)
	}
	return nil
}

// IPv4 returns the first IPv4 layer, or nil.
func (p *Packet) IPv4() *IPv4 {
	if l := p.Layer(LayerTypeIPv4); l != nil {
		return l.(*IPv4)
	}
	return nil
}

// IPv6 returns the first IPv6 layer, or nil.
func (p *Packet) IPv6() *IPv6 {
	if l := p.Layer(LayerTypeIPv6); l != nil {
		return l.(*IPv6)
	}
	return nil
}

// String renders a one-line summary of the layer stack, for incident logs.
func (p *Packet) String() string {
	var parts []string
	for _, l := range p.layers {
		switch v := l.(type) {
		case *Ethernet:
			parts = append(parts, fmt.Sprintf("Eth{%s > %s type=%#04x}", v.SrcMAC, v.DstMAC, v.EtherType))
		case *VLAN:
			parts = append(parts, fmt.Sprintf("VLAN{id=%d}", v.VLANID))
		case *IPv4:
			parts = append(parts, fmt.Sprintf("IPv4{%s > %s ttl=%d proto=%d}", v.SrcIP, v.DstIP, v.TTL, v.Protocol))
		case *IPv6:
			parts = append(parts, fmt.Sprintf("IPv6{%s > %s hop=%d next=%d}", v.SrcIP, v.DstIP, v.HopLimit, v.NextHeader))
		case *TCP:
			parts = append(parts, fmt.Sprintf("TCP{%d > %d}", v.SrcPort, v.DstPort))
		case *UDP:
			parts = append(parts, fmt.Sprintf("UDP{%d > %d}", v.SrcPort, v.DstPort))
		case *ICMPv4:
			parts = append(parts, fmt.Sprintf("ICMPv4{type=%d code=%d}", v.Type, v.Code))
		case *ICMPv6:
			parts = append(parts, fmt.Sprintf("ICMPv6{type=%d code=%d}", v.Type, v.Code))
		case *ARP:
			parts = append(parts, fmt.Sprintf("ARP{op=%d}", v.Operation))
		case *GRE:
			parts = append(parts, fmt.Sprintf("GRE{proto=%#04x}", v.Protocol))
		case *Payload:
			parts = append(parts, fmt.Sprintf("Payload{%d bytes}", len(*v)))
		default:
			parts = append(parts, l.LayerType().String())
		}
	}
	if p.err != nil {
		parts = append(parts, "Error{"+p.err.Error()+"}")
	}
	return strings.Join(parts, " / ")
}
