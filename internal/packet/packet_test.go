package packet

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestParseMAC(t *testing.T) {
	m, err := ParseMAC("02:32:0a:ff:00:10")
	if err != nil {
		t.Fatal(err)
	}
	want := MAC{0x02, 0x32, 0x0a, 0xff, 0x00, 0x10}
	if m != want {
		t.Errorf("ParseMAC = %v, want %v", m, want)
	}
	if m.String() != "02:32:0a:ff:00:10" {
		t.Errorf("String = %q", m.String())
	}
	if _, err := ParseMAC("bogus"); err == nil {
		t.Error("ParseMAC(bogus) succeeded")
	}
	if !(MAC{0x01}).IsMulticast() {
		t.Error("01:... not multicast")
	}
	if (MAC{0x02}).IsMulticast() {
		t.Error("02:... multicast")
	}
}

func TestParseIPv4(t *testing.T) {
	a, err := ParseIPv4("10.0.1.200")
	if err != nil {
		t.Fatal(err)
	}
	if a != (IPv4Addr{10, 0, 1, 200}) {
		t.Errorf("ParseIPv4 = %v", a)
	}
	if a.String() != "10.0.1.200" {
		t.Errorf("String = %q", a.String())
	}
	if got := IPv4AddrFromUint32(a.Uint32()); got != a {
		t.Errorf("uint32 round trip = %v", got)
	}
	for _, bad := range []string{"", "1.2.3", "1.2.3.4.5", "256.1.1.1", "a.b.c.d"} {
		if _, err := ParseIPv4(bad); err == nil {
			t.Errorf("ParseIPv4(%q) succeeded", bad)
		}
	}
}

func TestParseIPv6(t *testing.T) {
	cases := map[string]IPv6Addr{
		"2001:db8:0:0:0:0:0:1": {0x20, 0x01, 0x0d, 0xb8, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1},
		"2001:db8::1":          {0x20, 0x01, 0x0d, 0xb8, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1},
		"::1":                  {0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1},
		"fe80::":               {0xfe, 0x80, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0},
	}
	for s, want := range cases {
		got, err := ParseIPv6(s)
		if err != nil {
			t.Errorf("ParseIPv6(%q): %v", s, err)
			continue
		}
		if got != want {
			t.Errorf("ParseIPv6(%q) = %v, want %v", s, got, want)
		}
	}
	for _, bad := range []string{"", ":::", "1:2:3", "2001:db8::1::2", "g::1", "1:2:3:4:5:6:7:8:9"} {
		if _, err := ParseIPv6(bad); err == nil {
			t.Errorf("ParseIPv6(%q) succeeded", bad)
		}
	}
}

func TestEthernetRoundTrip(t *testing.T) {
	e := &Ethernet{
		DstMAC:    MAC{1, 2, 3, 4, 5, 6},
		SrcMAC:    MAC{6, 5, 4, 3, 2, 1},
		EtherType: EtherTypeIPv4,
	}
	data, err := Serialize(SerializeOptions{}, e, Raw([]byte{0xde, 0xad}))
	if err != nil {
		t.Fatal(err)
	}
	var got Ethernet
	payload, err := got.DecodeFromBytes(data)
	if err != nil {
		t.Fatal(err)
	}
	if got != *e {
		t.Errorf("round trip: got %+v, want %+v", got, *e)
	}
	if !bytes.Equal(payload, []byte{0xde, 0xad}) {
		t.Errorf("payload = %x", payload)
	}
}

func TestVLANRoundTrip(t *testing.T) {
	v := &VLAN{Priority: 5, DropElig: true, VLANID: 0x123, EtherType: EtherTypeIPv6}
	data, err := Serialize(SerializeOptions{}, v)
	if err != nil {
		t.Fatal(err)
	}
	var got VLAN
	if _, err := got.DecodeFromBytes(data); err != nil {
		t.Fatal(err)
	}
	if got != *v {
		t.Errorf("round trip: got %+v, want %+v", got, *v)
	}
	if _, err := Serialize(SerializeOptions{}, &VLAN{VLANID: 0x2000}); err == nil {
		t.Error("out-of-range VLAN ID serialized")
	}
	if _, err := Serialize(SerializeOptions{}, &VLAN{Priority: 9}); err == nil {
		t.Error("out-of-range priority serialized")
	}
}

func TestIPv4RoundTripAndChecksum(t *testing.T) {
	ip := &IPv4{
		TOS:      0x2e << 2,
		TTL:      64,
		Protocol: IPProtocolUDP,
		SrcIP:    MustParseIPv4("192.168.0.1"),
		DstIP:    MustParseIPv4("10.20.30.40"),
	}
	data, err := Serialize(SerializeOptions{FixLengths: true, ComputeChecksums: true}, ip, Raw([]byte{1, 2, 3, 4}))
	if err != nil {
		t.Fatal(err)
	}
	// Verify the checksum over the raw header sums to zero when included.
	if cs := internetChecksum(data[:20], 0); cs != 0 {
		t.Errorf("header checksum does not verify: %#04x", cs)
	}
	var got IPv4
	payload, err := got.DecodeFromBytes(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Length != 24 {
		t.Errorf("Length = %d, want 24", got.Length)
	}
	if got.SrcIP != ip.SrcIP || got.DstIP != ip.DstIP || got.TTL != 64 || got.Protocol != IPProtocolUDP {
		t.Errorf("decode mismatch: %+v", got)
	}
	if got.DSCP() != 0x2e {
		t.Errorf("DSCP = %#x", got.DSCP())
	}
	if !bytes.Equal(payload, []byte{1, 2, 3, 4}) {
		t.Errorf("payload = %x", payload)
	}
}

func TestIPv4SetDSCP(t *testing.T) {
	ip := &IPv4{TOS: 0x03} // ECN bits set
	ip.SetDSCP(0x2e)
	if ip.DSCP() != 0x2e || ip.TOS&0x3 != 0x3 {
		t.Errorf("SetDSCP: TOS = %#02x", ip.TOS)
	}
}

func TestIPv4DecodeErrors(t *testing.T) {
	var ip IPv4
	if _, err := ip.DecodeFromBytes(make([]byte, 10)); err == nil {
		t.Error("short header decoded")
	}
	bad := make([]byte, 20)
	bad[0] = 0x65 // version 6
	if _, err := ip.DecodeFromBytes(bad); err == nil {
		t.Error("wrong version decoded")
	}
	bad[0] = 0x42 // IHL 2 words
	if _, err := ip.DecodeFromBytes(bad); err == nil {
		t.Error("bad IHL decoded")
	}
}

func TestIPv6RoundTrip(t *testing.T) {
	ip := &IPv6{
		TrafficClass: 0xb8,
		FlowLabel:    0xabcde,
		NextHeader:   IPProtocolTCP,
		HopLimit:     255,
		SrcIP:        MustParseIPv6("2001:db8::1"),
		DstIP:        MustParseIPv6("2001:db8::2"),
	}
	data, err := Serialize(SerializeOptions{FixLengths: true}, ip, Raw([]byte{9, 9}))
	if err != nil {
		t.Fatal(err)
	}
	var got IPv6
	payload, err := got.DecodeFromBytes(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.SrcIP != ip.SrcIP || got.DstIP != ip.DstIP || got.FlowLabel != 0xabcde ||
		got.TrafficClass != 0xb8 || got.HopLimit != 255 || got.Length != 2 {
		t.Errorf("decode mismatch: %+v", got)
	}
	if !bytes.Equal(payload, []byte{9, 9}) {
		t.Errorf("payload = %x", payload)
	}
}

func TestTCPChecksum(t *testing.T) {
	ip := &IPv4{TTL: 64, Protocol: IPProtocolTCP, SrcIP: MustParseIPv4("1.1.1.1"), DstIP: MustParseIPv4("2.2.2.2")}
	tcp := &TCP{SrcPort: 443, DstPort: 51000, Flags: TCPSyn | TCPAck, Window: 1024}
	tcp.SetNetworkLayerForChecksum(ip.SrcIP[:], ip.DstIP[:])
	data, err := Serialize(SerializeOptions{FixLengths: true, ComputeChecksums: true}, ip, tcp, Raw([]byte{0xaa}))
	if err != nil {
		t.Fatal(err)
	}
	// Verify checksum: pseudo header + TCP segment must fold to zero.
	seg := data[20:]
	sum := pseudoHeaderSum(ip.SrcIP[:], ip.DstIP[:], IPProtocolTCP, len(seg))
	if cs := internetChecksum(seg, sum); cs != 0 {
		t.Errorf("TCP checksum does not verify: %#04x", cs)
	}
	var got TCP
	if _, err := got.DecodeFromBytes(seg); err != nil {
		t.Fatal(err)
	}
	if got.SrcPort != 443 || got.DstPort != 51000 || got.Flags != TCPSyn|TCPAck {
		t.Errorf("decode mismatch: %+v", got)
	}
}

func TestUDPChecksumAndLength(t *testing.T) {
	ip := &IPv4{TTL: 1, Protocol: IPProtocolUDP, SrcIP: MustParseIPv4("10.0.0.1"), DstIP: MustParseIPv4("10.0.0.2")}
	udp := &UDP{SrcPort: 53, DstPort: 5353}
	udp.SetNetworkLayerForChecksum(ip.SrcIP[:], ip.DstIP[:])
	data, err := Serialize(SerializeOptions{FixLengths: true, ComputeChecksums: true}, ip, udp, Raw([]byte("dns")))
	if err != nil {
		t.Fatal(err)
	}
	var got UDP
	payload, err := got.DecodeFromBytes(data[20:])
	if err != nil {
		t.Fatal(err)
	}
	if got.Length != 11 {
		t.Errorf("Length = %d, want 11", got.Length)
	}
	if string(payload) != "dns" {
		t.Errorf("payload = %q", payload)
	}
	seg := data[20:]
	sum := pseudoHeaderSum(ip.SrcIP[:], ip.DstIP[:], IPProtocolUDP, len(seg))
	if cs := internetChecksum(seg, sum); cs != 0 {
		t.Errorf("UDP checksum does not verify: %#04x", cs)
	}
}

func TestICMPv4RoundTrip(t *testing.T) {
	ic := &ICMPv4{Type: 8, Code: 0, RestOf: 0x00010001}
	data, err := Serialize(SerializeOptions{ComputeChecksums: true}, ic, Raw([]byte("ping")))
	if err != nil {
		t.Fatal(err)
	}
	if cs := internetChecksum(data, 0); cs != 0 {
		t.Errorf("ICMP checksum does not verify: %#04x", cs)
	}
	var got ICMPv4
	if _, err := got.DecodeFromBytes(data); err != nil {
		t.Fatal(err)
	}
	if got.Type != 8 || got.RestOf != 0x00010001 {
		t.Errorf("decode mismatch: %+v", got)
	}
}

func TestICMPv6Checksum(t *testing.T) {
	src := MustParseIPv6("fe80::1")
	dst := MustParseIPv6("ff02::2")
	ic := &ICMPv6{Type: ICMPv6TypeRouterSolicitation}
	ic.SetNetworkLayerForChecksum(src[:], dst[:])
	data, err := Serialize(SerializeOptions{ComputeChecksums: true}, ic)
	if err != nil {
		t.Fatal(err)
	}
	sum := pseudoHeaderSum(src[:], dst[:], IPProtocolICMPv6, len(data))
	if cs := internetChecksum(data, sum); cs != 0 {
		t.Errorf("ICMPv6 checksum does not verify: %#04x", cs)
	}
}

func TestGRERoundTrip(t *testing.T) {
	g := &GRE{Protocol: EtherTypeIPv4}
	inner := &IPv4{TTL: 9, Protocol: IPProtocolUDP, SrcIP: IPv4Addr{1, 2, 3, 4}, DstIP: IPv4Addr{5, 6, 7, 8}}
	data, err := Serialize(SerializeOptions{FixLengths: true, ComputeChecksums: true}, g, inner)
	if err != nil {
		t.Fatal(err)
	}
	var got GRE
	payload, err := got.DecodeFromBytes(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Protocol != EtherTypeIPv4 {
		t.Errorf("Protocol = %#04x", got.Protocol)
	}
	var gotIP IPv4
	if _, err := gotIP.DecodeFromBytes(payload); err != nil {
		t.Fatal(err)
	}
	if gotIP.TTL != 9 {
		t.Errorf("inner TTL = %d", gotIP.TTL)
	}
	// GRE with flag bits must be rejected.
	bad := []byte{0x80, 0, 0x08, 0}
	if _, err := got.DecodeFromBytes(bad); err == nil {
		t.Error("GRE with checksum flag decoded")
	}
}

func TestARPRoundTrip(t *testing.T) {
	a := &ARP{
		Operation: 1,
		SenderMAC: MAC{1, 1, 1, 1, 1, 1},
		SenderIP:  IPv4Addr{10, 0, 0, 1},
		TargetIP:  IPv4Addr{10, 0, 0, 2},
	}
	data, err := Serialize(SerializeOptions{}, a)
	if err != nil {
		t.Fatal(err)
	}
	var got ARP
	if _, err := got.DecodeFromBytes(data); err != nil {
		t.Fatal(err)
	}
	if got != *a {
		t.Errorf("round trip: got %+v, want %+v", got, *a)
	}
}

func TestNewPacketFullStack(t *testing.T) {
	eth := &Ethernet{SrcMAC: MAC{2, 0, 0, 0, 0, 1}, DstMAC: MAC{2, 0, 0, 0, 0, 2}, EtherType: EtherTypeIPv4}
	ip := &IPv4{TTL: 64, Protocol: IPProtocolTCP, SrcIP: IPv4Addr{1, 1, 1, 1}, DstIP: IPv4Addr{2, 2, 2, 2}}
	tcp := &TCP{SrcPort: 80, DstPort: 12345}
	tcp.SetNetworkLayerForChecksum(ip.SrcIP[:], ip.DstIP[:])
	data, err := Serialize(SerializeOptions{FixLengths: true, ComputeChecksums: true}, eth, ip, tcp, Raw([]byte("hello")))
	if err != nil {
		t.Fatal(err)
	}
	p := NewPacket(data, LayerTypeEthernet)
	if p.ErrorLayer() != nil {
		t.Fatal(p.ErrorLayer())
	}
	types := []LayerType{}
	for _, l := range p.Layers() {
		types = append(types, l.LayerType())
	}
	want := []LayerType{LayerTypeEthernet, LayerTypeIPv4, LayerTypeTCP, LayerTypePayload}
	if len(types) != len(want) {
		t.Fatalf("layers = %v, want %v", types, want)
	}
	for i := range want {
		if types[i] != want[i] {
			t.Fatalf("layers = %v, want %v", types, want)
		}
	}
	if p.IPv4() == nil || p.IPv4().TTL != 64 {
		t.Error("IPv4 accessor failed")
	}
	if p.Ethernet() == nil || p.Ethernet().EtherType != EtherTypeIPv4 {
		t.Error("Ethernet accessor failed")
	}
	if got := p.Layer(LayerTypeTCP).(*TCP); got.DstPort != 12345 {
		t.Errorf("TCP DstPort = %d", got.DstPort)
	}
	if p.Layer(LayerTypeUDP) != nil {
		t.Error("found UDP layer in TCP packet")
	}
	if s := p.String(); s == "" {
		t.Error("empty String()")
	}
}

func TestNewPacketVLANAndIPv6(t *testing.T) {
	eth := &Ethernet{EtherType: EtherTypeVLAN}
	vlan := &VLAN{VLANID: 100, EtherType: EtherTypeIPv6}
	ip6 := &IPv6{NextHeader: IPProtocolUDP, HopLimit: 64, SrcIP: MustParseIPv6("2001:db8::1"), DstIP: MustParseIPv6("2001:db8::99")}
	udp := &UDP{SrcPort: 1000, DstPort: 2000}
	data, err := Serialize(SerializeOptions{FixLengths: true}, eth, vlan, ip6, udp, Raw([]byte("x")))
	if err != nil {
		t.Fatal(err)
	}
	p := NewPacket(data, LayerTypeEthernet)
	if p.ErrorLayer() != nil {
		t.Fatal(p.ErrorLayer())
	}
	if p.Layer(LayerTypeVLAN) == nil || p.IPv6() == nil || p.Layer(LayerTypeUDP) == nil {
		t.Fatalf("stack = %s", p)
	}
	if p.IPv6().DSCP() != 0 {
		t.Errorf("DSCP = %d", p.IPv6().DSCP())
	}
}

func TestNewPacketError(t *testing.T) {
	eth := &Ethernet{EtherType: EtherTypeIPv4}
	data, err := Serialize(SerializeOptions{}, eth, Raw([]byte{0x45})) // truncated IPv4
	if err != nil {
		t.Fatal(err)
	}
	p := NewPacket(data, LayerTypeEthernet)
	if p.ErrorLayer() == nil {
		t.Fatal("expected decode error")
	}
	if p.Ethernet() == nil {
		t.Error("outer Ethernet layer lost on inner error")
	}
}

func TestSerializeBufferGrowth(t *testing.T) {
	b := NewSerializeBuffer()
	big := b.PrependBytes(4096)
	for i := range big {
		big[i] = byte(i)
	}
	if len(b.Bytes()) != 4096 {
		t.Fatalf("len = %d", len(b.Bytes()))
	}
	b.PrependBytes(8) // must not disturb existing bytes
	if got := b.Bytes()[8]; got != 0 {
		t.Errorf("first payload byte = %d", got)
	}
	app := b.AppendBytes(4)
	copy(app, []byte{1, 2, 3, 4})
	if got := b.Bytes()[len(b.Bytes())-1]; got != 4 {
		t.Errorf("last byte = %d", got)
	}
	b.Clear()
	if len(b.Bytes()) != 0 {
		t.Errorf("Clear left %d bytes", len(b.Bytes()))
	}
}

// Property: the internet checksum of data with its checksum field folded in
// verifies to zero, for random payloads.
func TestChecksumProperty(t *testing.T) {
	f := func(data []byte) bool {
		cs := internetChecksum(data, 0)
		// Appending the complement checksum should make the whole verify,
		// when data has even length.
		if len(data)%2 != 0 {
			data = append(data, 0)
		}
		buf := make([]byte, len(data)+2)
		copy(buf, data)
		binary.BigEndian.PutUint16(buf[len(data):], cs)
		return internetChecksum(buf, 0) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: IPv4 header round trip preserves all fields.
func TestIPv4RoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 500; i++ {
		ip := &IPv4{
			TOS:        uint8(rng.Intn(256)),
			ID:         uint16(rng.Intn(1 << 16)),
			Flags:      uint8(rng.Intn(8)),
			FragOffset: uint16(rng.Intn(1 << 13)),
			TTL:        uint8(rng.Intn(256)),
			Protocol:   uint8(rng.Intn(256)),
		}
		rng.Read(ip.SrcIP[:])
		rng.Read(ip.DstIP[:])
		data, err := Serialize(SerializeOptions{FixLengths: true, ComputeChecksums: true}, ip)
		if err != nil {
			t.Fatal(err)
		}
		var got IPv4
		if _, err := got.DecodeFromBytes(data); err != nil {
			t.Fatal(err)
		}
		ip.Length, ip.Checksum = got.Length, got.Checksum // computed fields
		// The decoded next-layer is whatever Protocol implies; skip payload.
		if got != *ip {
			t.Fatalf("round trip %d: got %+v, want %+v", i, got, *ip)
		}
	}
}
