// Package models embeds the P4 model programs used to validate switches,
// and compiles them to IR on demand.
//
// Each model is a role-specific instantiation (§3 "Role Specific
// Instantiations"): middleblock.p4 models the ToR role, wan.p4 the WAN
// role with tunneling. They correspond to the two production programs
// (Inst1, Inst2) of the paper's evaluation.
package models

import (
	_ "embed"
	"fmt"
	"sync"

	"switchv/internal/p4/ir"
	"switchv/internal/p4/parser"
)

//go:embed middleblock.p4
var middleblockSrc string

//go:embed wan.p4
var wanSrc string

// Source returns the P4 source text of the named model ("middleblock" or
// "wan").
func Source(name string) (string, error) {
	switch name {
	case "middleblock":
		return middleblockSrc, nil
	case "wan":
		return wanSrc, nil
	default:
		return "", fmt.Errorf("models: unknown model %q", name)
	}
}

// Names lists the available models.
func Names() []string { return []string{"middleblock", "wan"} }

var (
	mu       sync.Mutex
	compiled = map[string]*ir.Program{}
)

// Load parses and compiles the named model, caching the result.
func Load(name string) (*ir.Program, error) {
	mu.Lock()
	defer mu.Unlock()
	if p, ok := compiled[name]; ok {
		return p, nil
	}
	src, err := Source(name)
	if err != nil {
		return nil, err
	}
	astProg, err := parser.Parse(src)
	if err != nil {
		return nil, fmt.Errorf("models: parsing %s: %w", name, err)
	}
	p, err := ir.Compile(astProg)
	if err != nil {
		return nil, fmt.Errorf("models: compiling %s: %w", name, err)
	}
	compiled[name] = p
	return p, nil
}

// MustLoad is Load, panicking on error; for tests and examples.
func MustLoad(name string) *ir.Program {
	p, err := Load(name)
	if err != nil {
		panic(err)
	}
	return p
}

// Middleblock loads the middleblock (ToR role) model.
func Middleblock() *ir.Program { return MustLoad("middleblock") }

// WAN loads the wan (WAN role) model.
func WAN() *ir.Program { return MustLoad("wan") }
