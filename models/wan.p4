// wan.p4 — SAI-style P4 model of a fixed-function switch in the WAN
// deployment role (the Inst2 program of the evaluation, in the style of
// the Cerberus stack's models). Compared to middleblock.p4 it has a more
// involved forwarding pipeline: VLAN admission, GRE tunnel encapsulation
// and decapsulation, and richer ACL stages.

typedef bit<48> ethernet_addr_t;
typedef bit<32> ipv4_addr_t;
typedef bit<128> ipv6_addr_t;
typedef bit<12> vlan_id_t;
typedef bit<10> vrf_id_t;
typedef bit<10> nexthop_id_t;
typedef bit<10> wcmp_group_id_t;
typedef bit<10> router_interface_id_t;
typedef bit<10> neighbor_id_t;
typedef bit<10> mirror_session_id_t;
typedef bit<10> tunnel_id_t;
typedef bit<16> port_id_t;

const bit<10> VRF_TABLE_SIZE = 64;
const bit<16> IPV4_TABLE_SIZE = 2048;
const bit<16> IPV6_TABLE_SIZE = 1024;
const bit<10> NEXTHOP_TABLE_SIZE = 512;
const bit<10> NEIGHBOR_TABLE_SIZE = 512;
const bit<10> ROUTER_INTERFACE_TABLE_SIZE = 256;
const bit<10> WCMP_GROUP_TABLE_SIZE = 256;
const bit<10> TUNNEL_TABLE_SIZE = 128;
const bit<12> VLAN_TABLE_SIZE = 512;
const bit<8> ACL_INGRESS_TABLE_SIZE = 256;
const bit<8> ACL_PRE_INGRESS_TABLE_SIZE = 128;
const bit<8> ACL_EGRESS_TABLE_SIZE = 128;
const bit<8> MIRROR_SESSION_TABLE_SIZE = 8;
const bit<8> L3_ADMIT_TABLE_SIZE = 128;

header ethernet_t {
  ethernet_addr_t dst_addr;
  ethernet_addr_t src_addr;
  bit<16> ether_type;
}

header vlan_t {
  bit<3> priority;
  bit<1> drop_eligible;
  vlan_id_t vlan_id;
  bit<16> ether_type;
}

header ipv4_t {
  bit<6> dscp;
  bit<2> ecn;
  bit<16> identification;
  bit<8> ttl;
  bit<8> protocol;
  ipv4_addr_t src_addr;
  ipv4_addr_t dst_addr;
}

header ipv6_t {
  bit<6> dscp;
  bit<2> ecn;
  bit<20> flow_label;
  bit<8> next_header;
  bit<8> hop_limit;
  ipv6_addr_t src_addr;
  ipv6_addr_t dst_addr;
}

header gre_t {
  bit<16> protocol;
}

header inner_ipv4_t {
  bit<6> dscp;
  bit<2> ecn;
  bit<16> identification;
  bit<8> ttl;
  bit<8> protocol;
  ipv4_addr_t src_addr;
  ipv4_addr_t dst_addr;
}

header tcp_t {
  bit<16> src_port;
  bit<16> dst_port;
  bit<8> flags;
}

header udp_t {
  bit<16> src_port;
  bit<16> dst_port;
}

header icmp_t {
  bit<8> type;
  bit<8> code;
}

struct headers_t {
  ethernet_t ethernet;
  vlan_t vlan;
  ipv4_t ipv4;
  ipv6_t ipv6;
  gre_t gre;
  inner_ipv4_t inner_ipv4;
  tcp_t tcp;
  udp_t udp;
  icmp_t icmp;
}

struct local_metadata_t {
  vrf_id_t vrf_id;
  nexthop_id_t nexthop_id;
  wcmp_group_id_t wcmp_group_id;
  router_interface_id_t router_interface_id;
  neighbor_id_t neighbor_id;
  mirror_session_id_t mirror_session_id;
  tunnel_id_t tunnel_id;
  bit<16> l4_src_port;
  bit<16> l4_dst_port;
  bit<1> admit_to_l3;
  bit<1> vlan_admitted;
}

@name("wan")
control ingress(inout headers_t headers,
                inout local_metadata_t local_metadata,
                inout standard_metadata_t standard_metadata) {

  action drop() { mark_to_drop(); }

  action vlan_admit() { local_metadata.vlan_admitted = 1; }

  action set_vrf(@refers_to(vrf_table, vrf_id) vrf_id_t vrf_id) {
    local_metadata.vrf_id = vrf_id;
  }

  action set_nexthop_id(@refers_to(nexthop_table, nexthop_id) nexthop_id_t nexthop_id) {
    local_metadata.nexthop_id = nexthop_id;
  }

  action set_wcmp_group_id(@refers_to(wcmp_group_table, wcmp_group_id) wcmp_group_id_t wcmp_group_id) {
    local_metadata.wcmp_group_id = wcmp_group_id;
  }

  action set_nexthop(
      @refers_to(router_interface_table, router_interface_id) router_interface_id_t router_interface_id,
      @refers_to(neighbor_table, neighbor_id) neighbor_id_t neighbor_id) {
    local_metadata.router_interface_id = router_interface_id;
    local_metadata.neighbor_id = neighbor_id;
  }

  action set_nexthop_and_tunnel(
      @refers_to(router_interface_table, router_interface_id) router_interface_id_t router_interface_id,
      @refers_to(neighbor_table, neighbor_id) neighbor_id_t neighbor_id,
      @refers_to(tunnel_table, tunnel_id) tunnel_id_t tunnel_id) {
    local_metadata.router_interface_id = router_interface_id;
    local_metadata.neighbor_id = neighbor_id;
    local_metadata.tunnel_id = tunnel_id;
  }

  action set_dst_mac(ethernet_addr_t dst_mac) {
    headers.ethernet.dst_addr = dst_mac;
  }

  action set_port_and_src_mac(port_id_t port, ethernet_addr_t src_mac) {
    set_egress_port(port);
    headers.ethernet.src_addr = src_mac;
  }

  // GRE-in-IPv4 encapsulation: the current IPv4 header becomes the inner
  // header and a fresh outer IPv4+GRE pair is pushed.
  action encap_gre(ipv4_addr_t encap_src, ipv4_addr_t encap_dst) {
    headers.inner_ipv4.setValid();
    headers.inner_ipv4.dscp = headers.ipv4.dscp;
    headers.inner_ipv4.ecn = headers.ipv4.ecn;
    headers.inner_ipv4.identification = headers.ipv4.identification;
    headers.inner_ipv4.ttl = headers.ipv4.ttl;
    headers.inner_ipv4.protocol = headers.ipv4.protocol;
    headers.inner_ipv4.src_addr = headers.ipv4.src_addr;
    headers.inner_ipv4.dst_addr = headers.ipv4.dst_addr;
    headers.gre.setValid();
    headers.gre.protocol = 0x0800;
    headers.ipv4.src_addr = encap_src;
    headers.ipv4.dst_addr = encap_dst;
    headers.ipv4.protocol = 47;
    headers.ipv4.ttl = 64;
  }

  action admit_to_l3() { local_metadata.admit_to_l3 = 1; }

  action acl_drop() { mark_to_drop(); }
  action acl_trap() { punt_to_cpu(); }
  action acl_copy() { copy_to_cpu(); }
  action acl_mirror(
      @refers_to(mirror_session_table, mirror_session_id) mirror_session_id_t mirror_session_id) {
    local_metadata.mirror_session_id = mirror_session_id;
    mirror(mirror_session_id);
  }
  action acl_forward() { no_op(); }

  action set_mirror_port(port_id_t port) { no_op(); }

  @entry_restriction("vrf_id != 0")
  table vrf_table {
    key = { local_metadata.vrf_id : exact @name("vrf_id"); }
    actions = { no_action; }
    const default_action = no_action;
    size = VRF_TABLE_SIZE;
  }

  // VLANs 0 and 4095 are reserved by the hardware.
  @entry_restriction("vlan_id != 0; vlan_id != 4095")
  table vlan_table {
    key = { headers.vlan.vlan_id : exact @name("vlan_id"); }
    actions = { vlan_admit; }
    size = VLAN_TABLE_SIZE;
  }

  table acl_pre_ingress_table {
    key = {
      headers.ethernet.src_addr : ternary @name("src_mac");
      headers.ipv4.dst_addr : ternary @name("dst_ip");
      headers.ipv6.dst_addr : ternary @name("dst_ipv6");
      headers.ipv4.dscp : ternary @name("dscp");
      headers.ipv4.isValid() : optional @name("is_ipv4");
      headers.ipv6.isValid() : optional @name("is_ipv6");
    }
    actions = { set_vrf; }
    const default_action = no_action;
    size = ACL_PRE_INGRESS_TABLE_SIZE;
  }

  table ipv4_table {
    key = {
      local_metadata.vrf_id : exact @refers_to(vrf_table, vrf_id) @name("vrf_id");
      headers.ipv4.dst_addr : lpm @name("ipv4_dst");
    }
    actions = { drop; set_nexthop_id; set_wcmp_group_id; }
    const default_action = drop;
    size = IPV4_TABLE_SIZE;
  }

  table ipv6_table {
    key = {
      local_metadata.vrf_id : exact @refers_to(vrf_table, vrf_id) @name("vrf_id");
      headers.ipv6.dst_addr : lpm @name("ipv6_dst");
    }
    actions = { drop; set_nexthop_id; set_wcmp_group_id; }
    const default_action = drop;
    size = IPV6_TABLE_SIZE;
  }

  table wcmp_group_table {
    key = { local_metadata.wcmp_group_id : exact @name("wcmp_group_id"); }
    actions = { set_nexthop_id; }
    implementation = action_selector;
    size = WCMP_GROUP_TABLE_SIZE;
  }

  table nexthop_table {
    key = { local_metadata.nexthop_id : exact @name("nexthop_id"); }
    actions = { set_nexthop; set_nexthop_and_tunnel; }
    size = NEXTHOP_TABLE_SIZE;
  }

  // Tunnel endpoints are a bounded resource; the encap source address must
  // not be the unspecified address.
  @entry_restriction("tunnel_id != 0")
  table tunnel_table {
    key = { local_metadata.tunnel_id : exact @name("tunnel_id"); }
    actions = { encap_gre; }
    size = TUNNEL_TABLE_SIZE;
  }

  table neighbor_table {
    key = {
      local_metadata.router_interface_id : exact @refers_to(router_interface_table, router_interface_id) @name("router_interface_id");
      local_metadata.neighbor_id : exact @name("neighbor_id");
    }
    actions = { set_dst_mac; }
    size = NEIGHBOR_TABLE_SIZE;
  }

  table router_interface_table {
    key = { local_metadata.router_interface_id : exact @name("router_interface_id"); }
    actions = { set_port_and_src_mac; }
    size = ROUTER_INTERFACE_TABLE_SIZE;
  }

  table l3_admit_table {
    key = {
      headers.ethernet.dst_addr : ternary @name("dst_mac");
      standard_metadata.ingress_port : ternary @name("in_port");
    }
    actions = { admit_to_l3; }
    size = L3_ADMIT_TABLE_SIZE;
  }

  @entry_restriction("ttl::mask != 0 -> (is_ipv4 == 1 || is_ipv6 == 1); icmp_type::mask != 0 -> ip_protocol::value == 1; l4_dst_port::mask != 0 -> (ip_protocol::value == 6 || ip_protocol::value == 17)")
  table acl_ingress_table {
    key = {
      headers.ipv4.isValid() : optional @name("is_ipv4");
      headers.ipv6.isValid() : optional @name("is_ipv6");
      headers.vlan.isValid() : optional @name("is_vlan");
      headers.ethernet.ether_type : ternary @name("ether_type");
      headers.ethernet.dst_addr : ternary @name("dst_mac");
      headers.ipv4.src_addr : ternary @name("src_ip");
      headers.ipv4.ttl : ternary @name("ttl");
      headers.ipv4.protocol : ternary @name("ip_protocol");
      headers.icmp.type : ternary @name("icmp_type");
      local_metadata.l4_src_port : ternary @name("l4_src_port");
      local_metadata.l4_dst_port : ternary @name("l4_dst_port");
    }
    actions = { acl_drop; acl_trap; acl_copy; acl_mirror; acl_forward; }
    size = ACL_INGRESS_TABLE_SIZE;
  }

  table mirror_session_table {
    key = { local_metadata.mirror_session_id : exact @name("mirror_session_id"); }
    actions = { set_mirror_port; }
    size = MIRROR_SESSION_TABLE_SIZE;
  }

  apply {
    // Packets are dropped unless some action sets an egress port
    // (mirroring the simulator's invalid drop port default).
    mark_to_drop();

    if (headers.tcp.isValid()) {
      local_metadata.l4_src_port = headers.tcp.src_port;
      local_metadata.l4_dst_port = headers.tcp.dst_port;
    }
    if (headers.udp.isValid()) {
      local_metadata.l4_src_port = headers.udp.src_port;
      local_metadata.l4_dst_port = headers.udp.dst_port;
    }

    // VLAN admission: tagged packets must be on a configured VLAN.
    if (headers.vlan.isValid()) {
      vlan_table.apply();
      if (local_metadata.vlan_admitted == 0) {
        mark_to_drop();
        exit;
      }
    }

    // GRE decapsulation of tunnel-terminated packets.
    if (headers.gre.isValid()) {
      if (headers.inner_ipv4.isValid()) {
        headers.ipv4.dscp = headers.inner_ipv4.dscp;
        headers.ipv4.ecn = headers.inner_ipv4.ecn;
        headers.ipv4.identification = headers.inner_ipv4.identification;
        headers.ipv4.ttl = headers.inner_ipv4.ttl;
        headers.ipv4.protocol = headers.inner_ipv4.protocol;
        headers.ipv4.src_addr = headers.inner_ipv4.src_addr;
        headers.ipv4.dst_addr = headers.inner_ipv4.dst_addr;
        headers.inner_ipv4.setInvalid();
        headers.gre.setInvalid();
      }
    }

    acl_pre_ingress_table.apply();
    vrf_table.apply();
    l3_admit_table.apply();

    if (local_metadata.admit_to_l3 == 1) {
      if (headers.ipv4.isValid()) {
        if (headers.ipv4.ttl <= 1) {
          punt_to_cpu();
        } else {
          ipv4_table.apply();
        }
      } else {
        if (headers.ipv6.isValid()) {
          if (headers.ipv6.hop_limit <= 1) {
            punt_to_cpu();
          } else {
            ipv6_table.apply();
          }
        }
      }
      if (local_metadata.wcmp_group_id != 0) {
        wcmp_group_table.apply();
      }
      if (local_metadata.nexthop_id != 0) {
        nexthop_table.apply();
        neighbor_table.apply();
        router_interface_table.apply();
        // GRE-in-IPv4 encapsulation only applies to IPv4 payloads.
        if (local_metadata.tunnel_id != 0) {
          if (headers.ipv4.isValid()) {
            tunnel_table.apply();
          }
        }
        if (headers.ipv4.isValid()) {
          headers.ipv4.ttl = headers.ipv4.ttl - 1;
        }
        if (headers.ipv6.isValid()) {
          headers.ipv6.hop_limit = headers.ipv6.hop_limit - 1;
        }
      }
    }

    acl_ingress_table.apply();

    // Translate the mirror session chosen by the ACL to its destination
    // port (the logical mirror table of §3 "Mirror Sessions").
    if (local_metadata.mirror_session_id != 0) {
      mirror_session_table.apply();
    }
  }
}

control egress(inout headers_t headers,
               inout local_metadata_t local_metadata,
               inout standard_metadata_t standard_metadata) {

  action acl_egress_drop() { mark_to_drop(); }

  @entry_restriction("ether_type::mask != 0 -> ether_type::value != 0x0800")
  table acl_egress_table {
    key = {
      headers.ethernet.ether_type : ternary @name("ether_type");
      headers.ipv4.protocol : ternary @name("ip_protocol");
      standard_metadata.egress_port : ternary @name("out_port");
    }
    actions = { acl_egress_drop; }
    size = ACL_EGRESS_TABLE_SIZE;
  }

  apply {
    acl_egress_table.apply();
  }
}
