// middleblock.p4 — SAI-style P4 model of a fixed-function switch in the
// "middleblock" (ToR) deployment role. This is the Inst1 program of the
// evaluation: a role-specific instantiation in the style of the PINS
// sai_p4 models (vrf, IPv4/IPv6 routing, nexthop/WCMP, router interfaces,
// neighbors, ACLs, mirroring, punting).

typedef bit<48> ethernet_addr_t;
typedef bit<32> ipv4_addr_t;
typedef bit<128> ipv6_addr_t;
typedef bit<10> vrf_id_t;
typedef bit<10> nexthop_id_t;
typedef bit<10> wcmp_group_id_t;
typedef bit<10> router_interface_id_t;
typedef bit<10> neighbor_id_t;
typedef bit<10> mirror_session_id_t;
typedef bit<16> port_id_t;

const bit<10> VRF_TABLE_MINIMUM_GUARANTEED_SIZE = 64;
const bit<16> IPV4_TABLE_MINIMUM_GUARANTEED_SIZE = 1024;
const bit<16> IPV6_TABLE_MINIMUM_GUARANTEED_SIZE = 512;
const bit<10> NEXTHOP_TABLE_MINIMUM_GUARANTEED_SIZE = 256;
const bit<10> NEIGHBOR_TABLE_MINIMUM_GUARANTEED_SIZE = 256;
const bit<10> ROUTER_INTERFACE_TABLE_MINIMUM_GUARANTEED_SIZE = 128;
const bit<10> WCMP_GROUP_TABLE_MINIMUM_GUARANTEED_SIZE = 128;
const bit<8> ACL_INGRESS_TABLE_MINIMUM_GUARANTEED_SIZE = 128;
const bit<8> ACL_PRE_INGRESS_TABLE_MINIMUM_GUARANTEED_SIZE = 64;
const bit<8> ACL_EGRESS_TABLE_MINIMUM_GUARANTEED_SIZE = 64;
const bit<8> MIRROR_SESSION_TABLE_MINIMUM_GUARANTEED_SIZE = 4;
const bit<8> L3_ADMIT_TABLE_MINIMUM_GUARANTEED_SIZE = 64;

header ethernet_t {
  ethernet_addr_t dst_addr;
  ethernet_addr_t src_addr;
  bit<16> ether_type;
}

header ipv4_t {
  bit<6> dscp;
  bit<2> ecn;
  bit<16> identification;
  bit<8> ttl;
  bit<8> protocol;
  ipv4_addr_t src_addr;
  ipv4_addr_t dst_addr;
}

header ipv6_t {
  bit<6> dscp;
  bit<2> ecn;
  bit<20> flow_label;
  bit<8> next_header;
  bit<8> hop_limit;
  ipv6_addr_t src_addr;
  ipv6_addr_t dst_addr;
}

header tcp_t {
  bit<16> src_port;
  bit<16> dst_port;
  bit<8> flags;
}

header udp_t {
  bit<16> src_port;
  bit<16> dst_port;
}

header icmp_t {
  bit<8> type;
  bit<8> code;
}

header arp_t {
  bit<16> operation;
  ipv4_addr_t sender_ip;
  ipv4_addr_t target_ip;
}

struct headers_t {
  ethernet_t ethernet;
  ipv4_t ipv4;
  ipv6_t ipv6;
  tcp_t tcp;
  udp_t udp;
  icmp_t icmp;
  arp_t arp;
}

struct local_metadata_t {
  vrf_id_t vrf_id;
  nexthop_id_t nexthop_id;
  wcmp_group_id_t wcmp_group_id;
  router_interface_id_t router_interface_id;
  neighbor_id_t neighbor_id;
  bit<16> l4_src_port;
  bit<16> l4_dst_port;
  mirror_session_id_t mirror_session_id;
  bit<1> admit_to_l3;
  bit<1> wcmp_selected;
}

@name("middleblock")
control ingress(inout headers_t headers,
                inout local_metadata_t local_metadata,
                inout standard_metadata_t standard_metadata) {

  action drop() { mark_to_drop(); }

  action set_vrf(@refers_to(vrf_table, vrf_id) vrf_id_t vrf_id) {
    local_metadata.vrf_id = vrf_id;
  }

  action set_nexthop_id(@refers_to(nexthop_table, nexthop_id) nexthop_id_t nexthop_id) {
    local_metadata.nexthop_id = nexthop_id;
  }

  action set_wcmp_group_id(@refers_to(wcmp_group_table, wcmp_group_id) wcmp_group_id_t wcmp_group_id) {
    local_metadata.wcmp_group_id = wcmp_group_id;
  }

  action set_nexthop(
      @refers_to(router_interface_table, router_interface_id) router_interface_id_t router_interface_id,
      @refers_to(neighbor_table, neighbor_id) neighbor_id_t neighbor_id) {
    local_metadata.router_interface_id = router_interface_id;
    local_metadata.neighbor_id = neighbor_id;
  }

  action set_dst_mac(ethernet_addr_t dst_mac) {
    headers.ethernet.dst_addr = dst_mac;
  }

  action set_port_and_src_mac(port_id_t port, ethernet_addr_t src_mac) {
    set_egress_port(port);
    headers.ethernet.src_addr = src_mac;
  }

  action admit_to_l3() { local_metadata.admit_to_l3 = 1; }

  action acl_drop() { mark_to_drop(); }
  action acl_trap() { punt_to_cpu(); }
  action acl_copy() { copy_to_cpu(); }
  action acl_mirror(
      @refers_to(mirror_session_table, mirror_session_id) mirror_session_id_t mirror_session_id) {
    local_metadata.mirror_session_id = mirror_session_id;
    mirror(mirror_session_id);
  }
  action acl_forward() { no_op(); }

  action set_mirror_port(port_id_t port) { no_op(); }

  // VRFs are a bounded internal resource: this table is a P4 no-op, but
  // programming it allocates/deallocates VRFs in the switch (§3 "Bounded
  // Internal Resources"). VRF 0 is reserved by the hardware.
  @entry_restriction("vrf_id != 0")
  table vrf_table {
    key = { local_metadata.vrf_id : exact @name("vrf_id"); }
    actions = { no_action; }
    const default_action = no_action;
    size = VRF_TABLE_MINIMUM_GUARANTEED_SIZE;
  }

  table acl_pre_ingress_table {
    key = {
      headers.ethernet.src_addr : ternary @name("src_mac");
      headers.ipv4.dst_addr : ternary @name("dst_ip");
      headers.ipv4.dscp : ternary @name("dscp");
      headers.ipv4.isValid() : optional @name("is_ipv4");
      headers.ipv6.isValid() : optional @name("is_ipv6");
    }
    actions = { set_vrf; }
    const default_action = no_action;
    size = ACL_PRE_INGRESS_TABLE_MINIMUM_GUARANTEED_SIZE;
  }

  table ipv4_table {
    key = {
      local_metadata.vrf_id : exact @refers_to(vrf_table, vrf_id) @name("vrf_id");
      headers.ipv4.dst_addr : lpm @name("ipv4_dst");
    }
    actions = { drop; set_nexthop_id; set_wcmp_group_id; }
    const default_action = drop;
    size = IPV4_TABLE_MINIMUM_GUARANTEED_SIZE;
  }

  table ipv6_table {
    key = {
      local_metadata.vrf_id : exact @refers_to(vrf_table, vrf_id) @name("vrf_id");
      headers.ipv6.dst_addr : lpm @name("ipv6_dst");
    }
    actions = { drop; set_nexthop_id; set_wcmp_group_id; }
    const default_action = drop;
    size = IPV6_TABLE_MINIMUM_GUARANTEED_SIZE;
  }

  // One-shot action-selector table implementing WCMP: each entry carries a
  // weighted set of set_nexthop_id actions; the hash-based selection is
  // modeled as a free operation (§3 "Hashing").
  table wcmp_group_table {
    key = { local_metadata.wcmp_group_id : exact @name("wcmp_group_id"); }
    actions = { set_nexthop_id; }
    implementation = action_selector;
    size = WCMP_GROUP_TABLE_MINIMUM_GUARANTEED_SIZE;
  }

  table nexthop_table {
    key = { local_metadata.nexthop_id : exact @name("nexthop_id"); }
    actions = { set_nexthop; }
    size = NEXTHOP_TABLE_MINIMUM_GUARANTEED_SIZE;
  }

  table neighbor_table {
    key = {
      local_metadata.router_interface_id : exact @refers_to(router_interface_table, router_interface_id) @name("router_interface_id");
      local_metadata.neighbor_id : exact @name("neighbor_id");
    }
    actions = { set_dst_mac; }
    size = NEIGHBOR_TABLE_MINIMUM_GUARANTEED_SIZE;
  }

  table router_interface_table {
    key = { local_metadata.router_interface_id : exact @name("router_interface_id"); }
    actions = { set_port_and_src_mac; }
    size = ROUTER_INTERFACE_TABLE_MINIMUM_GUARANTEED_SIZE;
  }

  table l3_admit_table {
    key = {
      headers.ethernet.dst_addr : ternary @name("dst_mac");
      standard_metadata.ingress_port : ternary @name("in_port");
    }
    actions = { admit_to_l3; }
    size = L3_ADMIT_TABLE_MINIMUM_GUARANTEED_SIZE;
  }

  @entry_restriction("ttl::mask != 0 -> (is_ipv4 == 1 || is_ipv6 == 1); dscp::mask != 0 -> (is_ipv4 == 1 || is_ipv6 == 1); icmp_type::mask != 0 -> ip_protocol::value == 1")
  table acl_ingress_table {
    key = {
      headers.ipv4.isValid() : optional @name("is_ipv4");
      headers.ipv6.isValid() : optional @name("is_ipv6");
      headers.ethernet.ether_type : ternary @name("ether_type");
      headers.ethernet.dst_addr : ternary @name("dst_mac");
      headers.ipv4.ttl : ternary @name("ttl");
      headers.ipv4.dscp : ternary @name("dscp");
      headers.ipv4.protocol : ternary @name("ip_protocol");
      headers.icmp.type : ternary @name("icmp_type");
      local_metadata.l4_dst_port : ternary @name("l4_dst_port");
    }
    actions = { acl_drop; acl_trap; acl_copy; acl_mirror; acl_forward; }
    size = ACL_INGRESS_TABLE_MINIMUM_GUARANTEED_SIZE;
  }

  // Mirror sessions translate a session id to a physical port; the
  // translation to the clone API's session space is a modeling artifact
  // (§3 "Mirror Sessions") and the table is programmed like any other.
  table mirror_session_table {
    key = { local_metadata.mirror_session_id : exact @name("mirror_session_id"); }
    actions = { set_mirror_port; }
    size = MIRROR_SESSION_TABLE_MINIMUM_GUARANTEED_SIZE;
  }

  apply {
    // Packets are dropped unless some action sets an egress port
    // (mirroring the simulator's invalid drop port default).
    mark_to_drop();

    // L4 metadata extraction.
    if (headers.tcp.isValid()) {
      local_metadata.l4_src_port = headers.tcp.src_port;
      local_metadata.l4_dst_port = headers.tcp.dst_port;
    }
    if (headers.udp.isValid()) {
      local_metadata.l4_src_port = headers.udp.src_port;
      local_metadata.l4_dst_port = headers.udp.dst_port;
    }

    acl_pre_ingress_table.apply();
    vrf_table.apply();
    l3_admit_table.apply();

    if (local_metadata.admit_to_l3 == 1) {
      if (headers.ipv4.isValid()) {
        // The hardware immediately punts packets with TTL 0 or 1.
        if (headers.ipv4.ttl <= 1) {
          punt_to_cpu();
        } else {
          ipv4_table.apply();
        }
      } else {
        if (headers.ipv6.isValid()) {
          if (headers.ipv6.hop_limit <= 1) {
            punt_to_cpu();
          } else {
            ipv6_table.apply();
          }
        }
      }
      if (local_metadata.wcmp_group_id != 0) {
        wcmp_group_table.apply();
      }
      if (local_metadata.nexthop_id != 0) {
        nexthop_table.apply();
        neighbor_table.apply();
        router_interface_table.apply();
        if (headers.ipv4.isValid()) {
          headers.ipv4.ttl = headers.ipv4.ttl - 1;
        }
        if (headers.ipv6.isValid()) {
          headers.ipv6.hop_limit = headers.ipv6.hop_limit - 1;
        }
      }
    }

    acl_ingress_table.apply();

    // Translate the mirror session chosen by the ACL to its destination
    // port (the logical mirror table of §3 "Mirror Sessions").
    if (local_metadata.mirror_session_id != 0) {
      mirror_session_table.apply();
    }
  }
}

control egress(inout headers_t headers,
               inout local_metadata_t local_metadata,
               inout standard_metadata_t standard_metadata) {

  action acl_egress_drop() { mark_to_drop(); }

  @entry_restriction("ether_type::mask != 0 -> ether_type::value != 0x0800")
  table acl_egress_table {
    key = {
      headers.ethernet.ether_type : ternary @name("ether_type");
      headers.ipv4.protocol : ternary @name("ip_protocol");
      standard_metadata.egress_port : ternary @name("out_port");
    }
    actions = { acl_egress_drop; }
    size = ACL_EGRESS_TABLE_MINIMUM_GUARANTEED_SIZE;
  }

  apply {
    acl_egress_table.apply();
  }
}
