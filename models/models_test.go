package models

import (
	"testing"

	"switchv/internal/p4/ir"
)

func TestLoadMiddleblock(t *testing.T) {
	p, err := Load("middleblock")
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "middleblock" {
		t.Errorf("Name = %q", p.Name)
	}
	wantTables := []string{
		"vrf_table", "acl_pre_ingress_table", "ipv4_table", "ipv6_table",
		"wcmp_group_table", "nexthop_table", "neighbor_table",
		"router_interface_table", "l3_admit_table", "acl_ingress_table",
		"mirror_session_table", "acl_egress_table",
	}
	for _, name := range wantTables {
		if _, ok := p.TableByName(name); !ok {
			t.Errorf("missing table %s", name)
		}
	}
	if len(p.Tables) != len(wantTables) {
		t.Errorf("got %d tables, want %d", len(p.Tables), len(wantTables))
	}
	if len(p.Controls) != 2 {
		t.Fatalf("got %d controls", len(p.Controls))
	}

	ipv4, _ := p.TableByName("ipv4_table")
	if len(ipv4.Keys) != 2 {
		t.Fatalf("ipv4_table keys = %d", len(ipv4.Keys))
	}
	if ipv4.Keys[0].Name != "vrf_id" || ipv4.Keys[0].Match != ir.MatchExact {
		t.Errorf("key 0 = %+v", ipv4.Keys[0])
	}
	if ipv4.Keys[0].RefersTo == nil || ipv4.Keys[0].RefersTo.Table != "vrf_table" {
		t.Errorf("key 0 refers_to = %+v", ipv4.Keys[0].RefersTo)
	}
	if ipv4.Keys[1].Name != "ipv4_dst" || ipv4.Keys[1].Match != ir.MatchLPM {
		t.Errorf("key 1 = %+v", ipv4.Keys[1])
	}
	if ipv4.Keys[1].Field.Width != 32 {
		t.Errorf("ipv4_dst width = %d", ipv4.Keys[1].Field.Width)
	}
	if ipv4.Size != 1024 {
		t.Errorf("ipv4_table size = %d", ipv4.Size)
	}
	if ipv4.DefaultAction == nil || ipv4.DefaultAction.Name != "drop" || !ipv4.ConstDefault {
		t.Errorf("default action = %+v", ipv4.DefaultAction)
	}

	vrf, _ := p.TableByName("vrf_table")
	if vrf.EntryRestriction == "" {
		t.Error("vrf_table has no entry restriction")
	}
	if vrf.Size != 64 {
		t.Errorf("vrf_table size = %d", vrf.Size)
	}

	wcmp, _ := p.TableByName("wcmp_group_table")
	if !wcmp.IsSelector {
		t.Error("wcmp_group_table is not a selector table")
	}

	nh, ok := p.ActionByName("set_nexthop")
	if !ok {
		t.Fatal("missing action set_nexthop")
	}
	if len(nh.Params) != 2 {
		t.Fatalf("set_nexthop params = %d", len(nh.Params))
	}
	if nh.Params[0].RefersTo == nil || nh.Params[0].RefersTo.Table != "router_interface_table" {
		t.Errorf("param 0 refers_to = %+v", nh.Params[0].RefersTo)
	}

	// Synthetic and flattened fields.
	for _, name := range []string{
		"$drop", "$punt", "$copy", "$mirror", "$mirror_session",
		"headers.ipv4.$valid", "headers.ipv4.dst_addr", "headers.ipv6.dst_addr",
		"local_metadata.vrf_id", "standard_metadata.ingress_port",
	} {
		if _, ok := p.FieldByName(name); !ok {
			t.Errorf("missing field %s", name)
		}
	}
	if f, _ := p.FieldByName("headers.ipv6.dst_addr"); f.Width != 128 {
		t.Errorf("ipv6 dst width = %d", f.Width)
	}
	if f, _ := p.FieldByName("headers.ipv4.$valid"); !f.IsValidity || f.Header != "headers.ipv4" {
		t.Errorf("validity field = %+v", f)
	}

	// IDs are stable and in the P4Runtime-style ranges.
	for _, tbl := range p.Tables {
		if tbl.ID < 0x02000001 {
			t.Errorf("table %s ID = %#x", tbl.Name, tbl.ID)
		}
	}
	for _, a := range p.Actions {
		if a.ID < 0x01000001 {
			t.Errorf("action %s ID = %#x", a.Name, a.ID)
		}
	}
}

func TestLoadWAN(t *testing.T) {
	p, err := Load("wan")
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "wan" {
		t.Errorf("Name = %q", p.Name)
	}
	for _, name := range []string{"tunnel_table", "vlan_table", "acl_ingress_table"} {
		if _, ok := p.TableByName(name); !ok {
			t.Errorf("missing table %s", name)
		}
	}
	if len(p.Tables) < 14 {
		t.Errorf("wan has %d tables, want >= 14", len(p.Tables))
	}
	if _, ok := p.ActionByName("encap_gre"); !ok {
		t.Error("missing encap_gre action")
	}
	if _, ok := p.FieldByName("headers.inner_ipv4.$valid"); !ok {
		t.Error("missing inner_ipv4 validity field")
	}
	acl, _ := p.TableByName("acl_ingress_table")
	if len(acl.Keys) != 11 {
		t.Errorf("wan acl_ingress keys = %d", len(acl.Keys))
	}
}

func TestLoadUnknown(t *testing.T) {
	if _, err := Load("nope"); err == nil {
		t.Error("Load(nope) succeeded")
	}
	if _, err := Source("nope"); err == nil {
		t.Error("Source(nope) succeeded")
	}
}

func TestLoadCaches(t *testing.T) {
	a := MustLoad("middleblock")
	b := MustLoad("middleblock")
	if a != b {
		t.Error("Load did not cache")
	}
}

func TestNames(t *testing.T) {
	names := Names()
	if len(names) != 2 {
		t.Fatalf("Names = %v", names)
	}
	for _, n := range names {
		if _, err := Load(n); err != nil {
			t.Errorf("Load(%s): %v", n, err)
		}
	}
}
