// Command p4check runs SwitchV's static preflight analyzer over P4
// models: structural defects, unreachable control flow, and
// solver-proved dead constraints, each with a stable diagnostic code.
//
//	p4check                       # analyze every embedded model
//	p4check models/wan.p4 ...     # analyze specific sources
//	p4check -json models/wan.p4   # machine-readable findings
//
// Exit status is 1 when any model has error-severity findings (the
// same condition under which campaigns refuse to launch), 2 when a
// source does not even compile.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"switchv/internal/p4/check"
	"switchv/internal/p4/ir"
	"switchv/internal/p4/parser"
	"switchv/models"
)

func main() {
	jsonOut := flag.Bool("json", false, "print findings as JSON (one report per model)")
	flag.Parse()

	var reports []*check.Report
	exit := 0
	if flag.NArg() == 0 {
		for _, name := range models.Names() {
			prog, err := models.Load(name)
			if err != nil {
				fmt.Fprintf(os.Stderr, "p4check: %s: %v\n", name, err)
				os.Exit(2)
			}
			reports = append(reports, check.Check(prog))
		}
	} else {
		for _, path := range flag.Args() {
			src, err := os.ReadFile(path)
			if err != nil {
				fmt.Fprintf(os.Stderr, "p4check: %v\n", err)
				os.Exit(2)
			}
			ast, err := parser.Parse(string(src))
			if err != nil {
				fmt.Fprintf(os.Stderr, "p4check: %s: %v\n", path, err)
				os.Exit(2)
			}
			prog, err := ir.Compile(ast)
			if err != nil {
				fmt.Fprintf(os.Stderr, "p4check: %s: %v\n", path, err)
				os.Exit(2)
			}
			rep := check.Check(prog)
			rep.Program = path
			reports = append(reports, rep)
		}
	}

	for _, rep := range reports {
		if *jsonOut {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(rep); err != nil {
				fmt.Fprintf(os.Stderr, "p4check: %v\n", err)
				os.Exit(2)
			}
		} else {
			fmt.Print(rep.Text())
			fmt.Printf("%s: %d findings (%d errors), %d solver checks\n",
				rep.Program, len(rep.Findings), rep.Errors(), rep.SolverChecks)
		}
		if rep.HasErrors() {
			exit = 1
		}
	}
	os.Exit(exit)
}
