// Command p4check runs SwitchV's static preflight analyzer over P4
// models: structural defects, unreachable control flow, dataflow
// defects (uninitialized reads, dead writes, validity misuse), and
// solver-proved dead constraints, each with a stable diagnostic code.
//
//	p4check                       # analyze every embedded model
//	p4check models/wan.p4 ...     # analyze specific sources
//	p4check -json models/wan.p4   # machine-readable findings
//
// Exit status is 1 when any model has findings of any severity — the
// CI `make analyze` gate keys on this — and 2 when a source does not
// even compile or load.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"switchv/internal/p4/check"
	"switchv/internal/p4/ir"
	"switchv/internal/p4/parser"
	"switchv/models"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the whole command: parse flags, analyze, render, and return
// the exit status (0 clean, 1 findings, 2 load error). Split from main
// so the golden-file test can drive it in-process.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("p4check", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "print findings as JSON (one report per model)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	var reports []*check.Report
	if fs.NArg() == 0 {
		for _, name := range models.Names() {
			prog, err := models.Load(name)
			if err != nil {
				fmt.Fprintf(stderr, "p4check: %s: %v\n", name, err)
				return 2
			}
			reports = append(reports, check.Check(prog))
		}
	} else {
		for _, path := range fs.Args() {
			src, err := os.ReadFile(path)
			if err != nil {
				fmt.Fprintf(stderr, "p4check: %v\n", err)
				return 2
			}
			ast, err := parser.Parse(string(src))
			if err != nil {
				fmt.Fprintf(stderr, "p4check: %s: %v\n", path, err)
				return 2
			}
			prog, err := ir.Compile(ast)
			if err != nil {
				fmt.Fprintf(stderr, "p4check: %s: %v\n", path, err)
				return 2
			}
			rep := check.Check(prog)
			rep.Program = path
			reports = append(reports, rep)
		}
	}

	exit := 0
	for _, rep := range reports {
		if *jsonOut {
			enc := json.NewEncoder(stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(rep); err != nil {
				fmt.Fprintf(stderr, "p4check: %v\n", err)
				return 2
			}
		} else {
			fmt.Fprint(stdout, rep.Text())
			fmt.Fprintf(stdout, "%s: %d findings (%d errors), %d solver checks\n",
				rep.Program, len(rep.Findings), rep.Errors(), rep.SolverChecks)
		}
		if len(rep.Findings) > 0 {
			exit = 1
		}
	}
	return exit
}
