struct m_t { bit<8> a; }
control c(inout m_t m) {
  action nop() { no_op(); }
  table t {
    key = { m.a : exact @name("k1"); m.a : ternary @name("k2"); }
    actions = { nop; }
  }
  apply { t.apply(); }
}
