struct m_t { bit<8> a; }
control c(inout m_t m) {
  action nop() { no_op(); }
  action other() { no_op(); }
  table t {
    key = { m.a : exact; }
    actions = { nop; }
    default_action = other;
  }
  apply { t.apply(); }
}
