struct m_t { bit<8> a; }
control c(inout m_t m) {
  action nop() { no_op(); }
  @entry_restriction("a == 1 && a == 2")
  table t { key = { m.a : exact; } actions = { nop; } }
  apply { t.apply(); }
}
