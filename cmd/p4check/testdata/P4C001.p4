struct m_t { bit<8> a; bit<8> b; }
control c(inout m_t m) {
  action nop() { no_op(); }
  table t1 { key = { m.a : exact @refers_to(t2, b); } actions = { nop; } }
  table t2 { key = { m.b : exact @refers_to(t1, a); } actions = { nop; } }
  apply { t1.apply(); t2.apply(); }
}
