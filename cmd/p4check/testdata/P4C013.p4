header ipv4_t { bit<8> ttl; }
struct headers_t { ipv4_t ipv4; }
struct m_t { bit<8> a; }
control c(inout headers_t headers, inout m_t m) {
  action nop() { no_op(); }
  table t { key = { m.a : exact; } actions = { nop; } }
  apply { headers.ipv4.setInvalid(); m.a = headers.ipv4.ttl; t.apply(); }
}
