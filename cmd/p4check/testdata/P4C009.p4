struct m_t { bit<8> a; bit<8> b; }
control c(inout m_t m) {
  apply {
    if (m.a < 4) {
      if (m.a > 10) { m.b = 1; }
    }
  }
}
