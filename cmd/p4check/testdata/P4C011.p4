struct m_t { bit<8> a; bit<8> b; }
control c(inout m_t m) {
  action nop() { no_op(); }
  action seta() { m.a = 5; }
  table t1 { key = { m.a : exact; } actions = { nop; } }
  table t2 { key = { m.b : exact; } actions = { seta; } }
  apply { t1.apply(); t2.apply(); }
}
