struct m_t { bit<8> a; bit<8> b; }
control c(inout m_t m) {
  action setb(bit<8> v) { m.b = v; m.b = 7; }
  table t { key = { m.a : exact; } actions = { setb; } }
  apply { t.apply(); }
}
