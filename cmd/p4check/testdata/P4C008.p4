const bit<8> MODE = 1;
struct m_t { bit<8> a; }
control c(inout m_t m) {
  apply {
    if (MODE == 2) { m.a = 3; }
  }
}
