header ipv4_t { bit<32> dst_addr; }
struct headers_t { ipv4_t ipv4; }
struct m_t { bit<8> a; }
control c(inout headers_t headers, inout m_t m) {
  action nop() { no_op(); }
  table acl { key = { headers.ipv4.dst_addr : ternary; } actions = { nop; } }
  apply { acl.apply(); }
}
