struct m_t { bit<8> a; bit<16> b; }
control c(inout m_t m) {
  action nop() { no_op(); }
  table t1 { key = { m.b : exact; } actions = { nop; } }
  table t2 { key = { m.a : exact @refers_to(t1, b); } actions = { nop; } }
  apply { t1.apply(); t2.apply(); }
}
