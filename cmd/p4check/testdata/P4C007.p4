struct m_t { bit<8> a; bit<8> b; }
control c(inout m_t m) {
  action nop() { no_op(); }
  table t1 { key = { m.a : exact; } actions = { nop; } }
  table t2 { key = { m.b : exact; } actions = { nop; } }
  apply { t1.apply(); }
}
