header probe_t { bit<8> kind; }
struct headers_t { probe_t probe; }
struct m_t { bit<8> a; }
control c(inout headers_t headers, inout m_t m) {
  action nop() { no_op(); }
  table t { key = { headers.probe.kind : exact; } actions = { nop; } }
  apply { t.apply(); }
}
