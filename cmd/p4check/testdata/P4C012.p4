struct m_t { bit<8> a; }
control c(inout m_t m) {
  action nop() { no_op(); }
  table t { key = { m.a : exact; } actions = { nop; } }
  apply { m.a = 1; m.a = 2; t.apply(); }
}
