package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden file from current output")

// TestGoldenJSON drives the command over one seeded-defect fixture per
// diagnostic code (testdata/P4C001.p4 .. P4C016.p4) and pins the -json
// output byte-for-byte. Regenerate with `go test ./cmd/p4check -update`
// after an intentional output change.
func TestGoldenJSON(t *testing.T) {
	fixtures, err := filepath.Glob(filepath.Join("testdata", "P4C*.p4"))
	if err != nil {
		t.Fatal(err)
	}
	if len(fixtures) != 16 {
		t.Fatalf("found %d fixtures, want one per code P4C001..P4C016", len(fixtures))
	}
	sort.Strings(fixtures)

	var stdout, stderr bytes.Buffer
	code := run(append([]string{"-json"}, fixtures...), &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit = %d, want 1 (findings present); stderr: %s", code, stderr.String())
	}

	// Every fixture must report the code it is named after.
	for _, fx := range fixtures {
		want := strings.TrimSuffix(filepath.Base(fx), ".p4")
		if !strings.Contains(stdout.String(), fmt.Sprintf("%q", want)) {
			t.Errorf("output lacks a %s finding", want)
		}
	}

	golden := filepath.Join("testdata", "defects.golden.json")
	if *update {
		if err := os.WriteFile(golden, stdout.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if !bytes.Equal(stdout.Bytes(), want) {
		t.Errorf("-json output differs from golden file; run `go test ./cmd/p4check -update` if intentional\ngot:\n%s", stdout.String())
	}
}

// TestExitCodes pins the contract: 0 clean, 1 any findings (even
// warn-only), 2 unloadable source.
func TestExitCodes(t *testing.T) {
	var out, errb bytes.Buffer

	// Embedded models are clean by construction (make analyze enforces it).
	if code := run(nil, &out, &errb); code != 0 {
		t.Errorf("embedded models: exit = %d, want 0\n%s%s", code, out.String(), errb.String())
	}

	// A warn-only model must still exit 1: `make analyze` keys on this.
	out.Reset()
	errb.Reset()
	if code := run([]string{filepath.Join("testdata", "P4C003.p4")}, &out, &errb); code != 1 {
		t.Errorf("warn-only model: exit = %d, want 1", code)
	}

	// Unparseable source exits 2.
	bad := filepath.Join(t.TempDir(), "bad.p4")
	if err := os.WriteFile(bad, []byte("control c( {"), 0o644); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	errb.Reset()
	if code := run([]string{bad}, &out, &errb); code != 2 {
		t.Errorf("bad source: exit = %d, want 2", code)
	}

	// Missing file exits 2.
	if code := run([]string{filepath.Join(t.TempDir(), "nope.p4")}, &out, &errb); code != 2 {
		t.Errorf("missing file: exit = %d, want 2", code)
	}
}
