// Command replay regenerates the paper's evaluation tables and figure:
//
//	replay -table 1        # bugs by component & tool (catalog + live run)
//	replay -table 2        # trivial-suite detectability
//	replay -table 3        # p4-symbolic / p4-fuzzer performance
//	replay -figure 7       # days-to-resolution histogram
//	replay -all            # everything
package main

import (
	"flag"
	"fmt"
	"log"

	"switchv/internal/bugdb"
	"switchv/internal/experiments"
)

func main() {
	table := flag.Int("table", 0, "table to regenerate (1, 2, or 3)")
	figure := flag.Int("figure", 0, "figure to regenerate (7)")
	all := flag.Bool("all", false, "regenerate everything")
	live := flag.Bool("live", true, "run live fault-injection campaigns (tables 1 and 2)")
	quick := flag.Bool("quick", false, "smaller live campaigns")
	flag.Parse()

	opts := experiments.Options{}
	if *quick {
		opts = experiments.Options{FuzzRequests: 25, FuzzUpdates: 15, Entries: 60}
	}

	var dets map[string][]experiments.FaultDetection
	if *live && (*all || *table == 1 || *table == 2) {
		dets = map[string][]experiments.FaultDetection{}
		for _, stack := range bugdb.Stacks() {
			d, err := experiments.AllDetections(stack, opts)
			if err != nil {
				log.Fatal(err)
			}
			dets[stack] = d
		}
	}
	if *all || *table == 1 {
		table1(dets)
	}
	if *all || *table == 2 {
		table2(dets)
	}
	if *all || *table == 3 {
		table3()
	}
	if *all || *figure == 7 {
		fmt.Println("=== Figure 7: days to resolution of PINS bugs ===")
		fmt.Println()
		fmt.Print(bugdb.RenderFigure7())
		within14, within5 := bugdb.HeadlineStats()
		fmt.Printf("headline: %.0f%% of resolved bugs fixed within 14 days, %.0f%% within 5 days\n\n",
			100*within14, 100*within5)
	}
	if !*all && *table == 0 && *figure == 0 {
		flag.Usage()
	}
}

func table1(dets map[string][]experiments.FaultDetection) {
	fmt.Println("=== Table 1: bugs found by SwitchV by component ===")
	fmt.Println()
	fmt.Println("-- Paper catalog (PINS: 21 months of nightly runs; Cerberus: 10-12 months) --")
	fmt.Print(bugdb.RenderTable1("PINS", bugdb.Table1("PINS")))
	fmt.Println()
	fmt.Print(bugdb.RenderTable1("Cerberus", bugdb.Table1("Cerberus")))
	fmt.Println()
	if dets == nil {
		return
	}
	for _, stack := range bugdb.Stacks() {
		fmt.Printf("-- Live reproduction: SwitchV vs the injected-fault subset (%s) --\n", stack)
		rows := experiments.AggregateTable1(dets[stack])
		fmt.Print(bugdb.RenderTable1(stack+" (live)", rows))
		fmt.Println()
		fmt.Print(experiments.RenderDetections(dets[stack]))
		fmt.Println()
	}
}

func table2(dets map[string][]experiments.FaultDetection) {
	fmt.Println("=== Table 2: which bugs the trivial test suite finds ===")
	fmt.Println()
	fmt.Println("-- Paper catalog --")
	fmt.Print(bugdb.RenderTable2())
	fmt.Println()
	if dets == nil {
		return
	}
	for _, stack := range bugdb.Stacks() {
		counts, total := experiments.AggregateTable2(dets[stack])
		fmt.Printf("-- Live reproduction (%s, %d injected faults) --\n", stack, total)
		order := append([]string{}, "Set P4Info", "Table entry programming", "Read all tables",
			"Packet-in", "Packet-out", "Packet forwarding", "")
		for _, test := range order {
			name := test
			if name == "" {
				name = "Not found by any test above"
			}
			fmt.Printf("%-28s %4d (%3.0f%%)\n", name, counts[test],
				100*float64(counts[test])/float64(total))
		}
		fmt.Println()
	}
}

func table3() {
	fmt.Println("=== Table 3: time required to run p4-symbolic and p4-fuzzer ===")
	fmt.Println()
	rows := []experiments.Table3Row{}
	for _, c := range []struct {
		role    string
		entries int
	}{
		{"middleblock", 798}, // Inst1
		{"wan", 1314},        // Inst2
	} {
		row, err := experiments.Table3(c.role, c.entries, 1000, 50, 42)
		if err != nil {
			log.Fatal(err)
		}
		rows = append(rows, row)
	}
	fmt.Print(experiments.RenderTable3(rows))
	fmt.Println()
	fmt.Println("(Inst1 = middleblock, Inst2 = wan; absolute numbers are not comparable to")
	fmt.Println("the paper's testbed — the shape is: generation >> cached lookup, testing")
	fmt.Println("roughly constant, fuzzer throughput roughly model-independent.)")
}
