// Command p4fuzz runs only the control-plane fuzzing half of SwitchV
// against a switch (in-process or remote).
//
//	p4fuzz -role middleblock -requests 1000 -updates 50
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"

	"switchv/internal/fuzzer"
	"switchv/internal/p4/p4info"
	"switchv/internal/p4rt"
	"switchv/internal/switchsim"
	"switchv/internal/switchv"
	"switchv/models"
)

func main() {
	connect := flag.String("connect", "", "address of a remote switchd (empty = in-process)")
	role := flag.String("role", "middleblock", "deployment role / model name")
	requests := flag.Int("requests", 1000, "number of write batches")
	updates := flag.Int("updates", 50, "updates per batch")
	seed := flag.Int64("seed", 1, "random seed")
	coverageGuided := flag.Bool("coverage", false, "coverage-guided generation; prints the coverage table and writes -coverage-out")
	coverageOut := flag.String("coverage-out", "coverage.json", "coverage snapshot output path (with -coverage)")
	plateau := flag.Int("plateau", 0, "stop after N consecutive batches with no new coverage (0 = never)")
	flag.Parse()

	prog, err := models.Load(*role)
	if err != nil {
		log.Fatal(err)
	}
	info := p4info.New(prog)

	var dev p4rt.Device
	if *connect != "" {
		cli, err := p4rt.Dial(*connect)
		if err != nil {
			log.Fatal(err)
		}
		defer cli.Close()
		dev = cli
	} else {
		sw := switchsim.New(*role)
		defer sw.Close()
		dev = sw
	}

	h := switchv.New(info, dev, nil)
	if err := h.PushPipeline(); err != nil {
		log.Fatal(err)
	}
	rep, err := h.RunControlPlane(fuzzer.Options{
		Seed:              *seed,
		NumRequests:       *requests,
		UpdatesPerRequest: *updates,
		CoverageGuided:    *coverageGuided,
		PlateauBatches:    *plateau,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("p4-fuzzer: %d batches, %d fuzzed entries in %v (%.0f entries/s)\n",
		rep.Batches, rep.Updates, rep.Elapsed.Round(1e6), rep.EntriesPerSecond())
	if rep.PlateauStopped {
		fmt.Printf("stopped early: coverage plateaued for %d batches\n", *plateau)
	}
	fmt.Printf("verdicts: %d must-accept, %d must-reject, %d may-reject\n",
		rep.MustAccept, rep.MustReject, rep.MayReject)
	var names []string
	for name := range rep.PerMutation {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Printf("mutations applied:\n")
	for _, name := range names {
		fmt.Printf("  %-32s %d\n", name, rep.PerMutation[name])
	}
	fmt.Printf("incidents: %d\n", len(rep.Incidents))
	for _, inc := range rep.Incidents {
		fmt.Printf("  %s\n", inc)
	}
	if *coverageGuided && rep.Coverage != nil {
		fmt.Printf("\n== coverage ==\n%s", rep.Coverage.Table())
		data, err := rep.Coverage.JSON()
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*coverageOut, data, 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("coverage snapshot written to %s\n", *coverageOut)
	}
	if len(rep.Incidents) > 0 {
		os.Exit(1)
	}
}
