// Command p4fuzz runs only the control-plane fuzzing half of SwitchV
// against a switch (in-process or remote).
//
//	p4fuzz -role middleblock -requests 1000 -updates 50
//	p4fuzz -role middleblock -workers 4            # parallel sharded campaign
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strings"

	"switchv/internal/coverage"
	"switchv/internal/fuzzer"
	"switchv/internal/p4/p4info"
	"switchv/internal/p4rt"
	"switchv/internal/switchsim"
	"switchv/internal/switchv"
	"switchv/models"
)

func main() {
	connect := flag.String("connect", "", "address of a remote switchd (empty = in-process); with -workers, a comma-separated list, one per shard")
	role := flag.String("role", "middleblock", "deployment role / model name")
	requests := flag.Int("requests", 1000, "number of write batches")
	updates := flag.Int("updates", 50, "updates per batch")
	seed := flag.Int64("seed", 1, "random seed")
	coverageGuided := flag.Bool("coverage", false, "coverage-guided generation; prints the coverage table and writes -coverage-out")
	coverageOut := flag.String("coverage-out", "coverage.json", "coverage snapshot output path (with -coverage)")
	plateau := flag.Int("plateau", 0, "stop after N consecutive batches with no new coverage (0 = never)")
	workers := flag.Int("workers", 0, "fuzz with the parallel sharded engine using N workers (0 = sequential single-stack campaign)")
	shards := flag.Int("shards", switchv.DefaultShards, "logical shard count for -workers (results depend on it; worker count only changes speed)")
	precheck := flag.String("precheck", "on", "static model preflight: on (refuse on error findings), warn (report only), off (skip)")
	flag.Parse()

	pm, err := precheckMode(*precheck)
	if err != nil {
		log.Fatal(err)
	}

	prog, err := models.Load(*role)
	if err != nil {
		log.Fatal(err)
	}
	info := p4info.New(prog)

	opts := fuzzer.Options{
		Seed:              *seed,
		NumRequests:       *requests,
		UpdatesPerRequest: *updates,
		CoverageGuided:    *coverageGuided,
		PlateauBatches:    *plateau,
	}

	var incidents []switchv.Incident
	var perMutation map[string]int
	var cov *coverage.Snapshot
	if *workers > 0 {
		factory, err := stackFactory(*connect, *role, *shards)
		if err != nil {
			log.Fatal(err)
		}
		rep, err := switchv.RunParallelCampaign(info, switchv.ParallelOptions{
			Workers:  *workers,
			Shards:   *shards,
			Fuzz:     opts,
			Factory:  factory,
			Precheck: pm,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("p4-fuzzer (parallel: %d workers, %d shards): %d batches, %d fuzzed entries in %v (%.0f entries/s)\n",
			rep.Workers, rep.Shards, rep.Batches, rep.Updates, rep.Elapsed.Round(1e6), rep.EntriesPerSecond())
		for _, s := range rep.PerShard {
			fmt.Printf("  shard %d (worker %d, seed %d): %d batches, %d updates, %d incidents in %v\n",
				s.Shard, s.Worker, s.Seed, s.Batches, s.Updates, s.Incidents, s.Elapsed.Round(1e6))
		}
		fmt.Printf("verdicts: %d must-accept, %d must-reject, %d may-reject\n",
			rep.MustAccept, rep.MustReject, rep.MayReject)
		fmt.Printf("duplicate incidents merged: %d\n", rep.DuplicateIncidents)
		incidents, perMutation, cov = rep.Incidents, rep.PerMutation, rep.Coverage
	} else {
		var dev p4rt.Device
		if *connect != "" {
			cli, err := p4rt.Dial(*connect)
			if err != nil {
				log.Fatal(err)
			}
			defer cli.Close()
			dev = cli
		} else {
			sw := switchsim.New(*role)
			defer sw.Close()
			dev = sw
		}

		h := switchv.New(info, dev, nil)
		h.Precheck = pm
		if err := h.PushPipeline(); err != nil {
			log.Fatal(err)
		}
		rep, err := h.RunControlPlane(opts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("p4-fuzzer: %d batches, %d fuzzed entries in %v (%.0f entries/s)\n",
			rep.Batches, rep.Updates, rep.Elapsed.Round(1e6), rep.EntriesPerSecond())
		if rep.PlateauStopped {
			fmt.Printf("stopped early: coverage plateaued for %d batches\n", *plateau)
		}
		fmt.Printf("verdicts: %d must-accept, %d must-reject, %d may-reject\n",
			rep.MustAccept, rep.MustReject, rep.MayReject)
		incidents, perMutation, cov = rep.Incidents, rep.PerMutation, rep.Coverage
	}

	var names []string
	for name := range perMutation {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Printf("mutations applied:\n")
	for _, name := range names {
		fmt.Printf("  %-32s %d\n", name, perMutation[name])
	}
	fmt.Printf("incidents: %d\n", len(incidents))
	for _, inc := range incidents {
		fmt.Printf("  %s\n", inc)
	}
	if *coverageGuided && cov != nil {
		fmt.Printf("\n== coverage ==\n%s", cov.Table())
		data, err := cov.JSON()
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*coverageOut, data, 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("coverage snapshot written to %s\n", *coverageOut)
	}
	if len(incidents) > 0 {
		os.Exit(1)
	}
}

// precheckMode parses the -precheck flag shared by the SwitchV CLIs.
func precheckMode(s string) (switchv.PrecheckMode, error) {
	switch s {
	case "on", "":
		return switchv.PrecheckOn, nil
	case "warn":
		return switchv.PrecheckWarn, nil
	case "off":
		return switchv.PrecheckOff, nil
	}
	return 0, fmt.Errorf("invalid -precheck %q (want on, warn, or off)", s)
}

// stackFactory builds per-shard switch stacks: in-process simulators, or
// one dialed client per comma-separated -connect address (shards sharing
// one switch would corrupt each other's read-back oracle).
func stackFactory(connect, role string, shards int) (switchv.StackFactory, error) {
	if connect == "" {
		return func(shard int) (p4rt.Device, func(), error) {
			sw := switchsim.New(role)
			return sw, func() { sw.Close() }, nil
		}, nil
	}
	addrs := strings.Split(connect, ",")
	if len(addrs) != shards {
		return nil, fmt.Errorf("-workers with -connect needs one address per shard: got %d addresses for %d shards", len(addrs), shards)
	}
	return func(shard int) (p4rt.Device, func(), error) {
		cli, err := p4rt.Dial(strings.TrimSpace(addrs[shard]))
		if err != nil {
			return nil, nil, err
		}
		return cli, func() { cli.Close() }, nil
	}, nil
}
