// Command switchd runs the simulated PINS-style switch as a TCP P4Runtime
// server, optionally with injected faults, so SwitchV can validate it
// remotely:
//
//	switchd -listen :9559 -role middleblock -fault asic.ttl1-no-trap
//	switchd -list-faults -json    # machine-readable fault catalog
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"switchv/internal/p4rt"
	"switchv/internal/switchsim"
)

// faultEntry is one -list-faults -json record.
type faultEntry struct {
	ID          string `json:"id"`
	Component   string `json:"component"`
	Description string `json:"description"`
}

func main() {
	listen := flag.String("listen", "127.0.0.1:9559", "address to serve P4Runtime on")
	role := flag.String("role", "middleblock", "deployment role (middleblock or wan)")
	faultList := flag.String("fault", "", "comma-separated fault ids to inject (see -list-faults)")
	listFaults := flag.Bool("list-faults", false, "list injectable faults and exit")
	jsonOut := flag.Bool("json", false, "with -list-faults, emit the catalog as JSON")
	flag.Parse()

	if *listFaults {
		if *jsonOut {
			var entries []faultEntry
			for _, f := range switchsim.AllFaults() {
				meta, _ := switchsim.Meta(f)
				entries = append(entries, faultEntry{
					ID: string(f), Component: meta.Component, Description: meta.Description,
				})
			}
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(entries); err != nil {
				log.Fatalf("switchd: encoding fault catalog: %v", err)
			}
			return
		}
		for _, f := range switchsim.AllFaults() {
			meta, _ := switchsim.Meta(f)
			fmt.Printf("%-36s %-20s %s\n", f, meta.Component, meta.Description)
		}
		return
	}

	faults, err := switchsim.ParseFaults(*faultList)
	if err != nil {
		// A misspelled fault id must fail loudly: silently validating a
		// fault-free switch would make every campaign below vacuous.
		fmt.Fprintf(os.Stderr, "switchd: %v\n", err)
		os.Exit(2)
	}

	sw := switchsim.New(*role, faults...)
	srv := p4rt.NewServer(sw, log.Printf)
	addr, err := srv.Listen(*listen)
	if err != nil {
		log.Fatalf("listen: %v", err)
	}
	log.Printf("switchd: %s switch serving P4Runtime on %s (faults: %d)", *role, addr, len(faults))

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Printf("switchd: shutting down")
	srv.Close()
	sw.Close()
}
