// Command switchd runs the simulated PINS-style switch as a TCP P4Runtime
// server, optionally with injected faults, so SwitchV can validate it
// remotely:
//
//	switchd -listen :9559 -role middleblock -fault asic.ttl1-no-trap
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"switchv/internal/p4rt"
	"switchv/internal/switchsim"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:9559", "address to serve P4Runtime on")
	role := flag.String("role", "middleblock", "deployment role (middleblock or wan)")
	faultList := flag.String("fault", "", "comma-separated fault ids to inject (see -list-faults)")
	listFaults := flag.Bool("list-faults", false, "list injectable faults and exit")
	flag.Parse()

	if *listFaults {
		for _, f := range switchsim.AllFaults() {
			meta, _ := switchsim.Meta(f)
			fmt.Printf("%-36s %-20s %s\n", f, meta.Component, meta.Description)
		}
		return
	}

	var faults []switchsim.Fault
	if *faultList != "" {
		for _, name := range strings.Split(*faultList, ",") {
			f := switchsim.Fault(strings.TrimSpace(name))
			if _, ok := switchsim.Meta(f); !ok {
				log.Fatalf("unknown fault %q (use -list-faults)", name)
			}
			faults = append(faults, f)
		}
	}

	sw := switchsim.New(*role, faults...)
	srv := p4rt.NewServer(sw, log.Printf)
	addr, err := srv.Listen(*listen)
	if err != nil {
		log.Fatalf("listen: %v", err)
	}
	log.Printf("switchd: %s switch serving P4Runtime on %s (faults: %d)", *role, addr, len(faults))

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Printf("switchd: shutting down")
	srv.Close()
	sw.Close()
}
