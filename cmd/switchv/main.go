// Command switchv validates a switch end-to-end against its P4 model: it
// pushes the pipeline, fuzzes the control plane API, and runs symbolic
// data-plane validation, printing an incident report.
//
//	switchv -role middleblock                      # in-process switch
//	switchv -connect 127.0.0.1:9559 -role wan      # remote switchd
//	switchv -role middleblock -fault asic.ttl1-no-trap
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"switchv/internal/coverage"
	"switchv/internal/fuzzer"
	"switchv/internal/p4/p4info"
	"switchv/internal/p4rt"
	"switchv/internal/switchsim"
	"switchv/internal/switchv"
	"switchv/internal/symbolic"
	"switchv/internal/workload"
	"switchv/models"
)

func main() {
	connect := flag.String("connect", "", "address of a remote switchd (empty = in-process switch)")
	role := flag.String("role", "middleblock", "deployment role / model name")
	faultList := flag.String("fault", "", "comma-separated faults to inject (in-process only)")
	requests := flag.Int("fuzz-requests", 100, "number of fuzz write batches")
	updates := flag.Int("fuzz-updates", 50, "updates per batch")
	seed := flag.Int64("seed", 1, "fuzzer seed")
	entries := flag.Int("entries", 200, "table entries for data-plane validation")
	branches := flag.Bool("branches", true, "use branch coverage (vs entry coverage)")
	churn := flag.Bool("churn", false, "re-apply entries with MODIFY before testing")
	skipFuzz := flag.Bool("skip-fuzz", false, "skip control plane fuzzing")
	skipData := flag.Bool("skip-dataplane", false, "skip data plane validation")
	coverageGuided := flag.Bool("coverage", false, "coverage-guided fuzzing; prints the coverage table and writes -coverage-out")
	coverageOut := flag.String("coverage-out", "coverage.json", "coverage snapshot output path (with -coverage)")
	plateau := flag.Int("plateau", 0, "stop fuzzing after N consecutive batches with no new coverage (0 = never)")
	flag.Parse()

	prog, err := models.Load(*role)
	if err != nil {
		log.Fatal(err)
	}
	info := p4info.New(prog)

	var dev p4rt.Device
	var dp switchv.DataPlane
	if *connect != "" {
		cli, err := p4rt.Dial(*connect)
		if err != nil {
			log.Fatal(err)
		}
		defer cli.Close()
		dev, dp = cli, cli
	} else {
		var faults []switchsim.Fault
		if *faultList != "" {
			for _, name := range strings.Split(*faultList, ",") {
				f := switchsim.Fault(strings.TrimSpace(name))
				if _, ok := switchsim.Meta(f); !ok {
					log.Fatalf("unknown fault %q", name)
				}
				faults = append(faults, f)
			}
		}
		sw := switchsim.New(*role, faults...)
		defer sw.Close()
		dev, dp = sw, sw
	}

	h := switchv.New(info, dev, dp)
	if err := h.PushPipeline(); err != nil {
		log.Fatalf("pushing pipeline: %v", err)
	}
	fmt.Printf("SwitchV: validating %s switch against model %q (%d tables)\n",
		*role, prog.Name, len(prog.Tables))

	// One coverage map spans both campaigns: control-plane accepts and
	// data-plane trace hits land in the same table/action counters.
	var cov *coverage.Map
	if *coverageGuided {
		cov = coverage.NewMap(info)
	}

	incidents := 0
	if !*skipFuzz {
		rep, err := h.RunControlPlane(fuzzer.Options{
			Seed:              *seed,
			NumRequests:       *requests,
			UpdatesPerRequest: *updates,
			CoverageGuided:    *coverageGuided,
			Coverage:          cov,
			PlateauBatches:    *plateau,
		})
		if err != nil {
			log.Fatalf("control plane campaign: %v", err)
		}
		fmt.Printf("\n== p4-fuzzer ==\n")
		fmt.Printf("batches: %d  updates: %d (%.0f entries/s)\n", rep.Batches, rep.Updates, rep.EntriesPerSecond())
		fmt.Printf("verdicts: %d must-accept, %d must-reject, %d may-reject\n",
			rep.MustAccept, rep.MustReject, rep.MayReject)
		if rep.PlateauStopped {
			fmt.Printf("stopped early: coverage plateaued for %d batches\n", *plateau)
		}
		fmt.Printf("incidents: %d\n", len(rep.Incidents))
		printIncidents(rep.Incidents)
		incidents += len(rep.Incidents)
	}

	if !*skipData {
		ents := workload.MustEntries(prog, *entries, *seed)
		mode := symbolic.CoverEntries
		if *branches {
			mode = symbolic.CoverBranches
		}
		rep, err := h.RunDataPlane(ents, switchv.DataPlaneOptions{Coverage: mode, Churn: *churn, CoverageMap: cov})
		if err != nil {
			log.Fatalf("data plane campaign: %v", err)
		}
		fmt.Printf("\n== p4-symbolic ==\n")
		fmt.Printf("entries: %d  goals: %d  covered: %d  unreachable: %d\n",
			rep.Entries, rep.Goals, rep.Covered, rep.Unreachable)
		fmt.Printf("generation: %v  testing: %v  packets: %d\n", rep.GenElapsed, rep.TestElapsed, rep.Packets)
		fmt.Printf("incidents: %d\n", len(rep.Incidents))
		printIncidents(rep.Incidents)
		incidents += len(rep.Incidents)
	}

	if cov != nil {
		snap := cov.Snapshot()
		fmt.Printf("\n== coverage ==\n%s", snap.Table())
		data, err := snap.JSON()
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*coverageOut, data, 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("coverage snapshot written to %s\n", *coverageOut)
	}

	if incidents > 0 {
		fmt.Printf("\nSwitchV found %d incidents; inspect the logs above to root-cause them.\n", incidents)
		os.Exit(1)
	}
	fmt.Printf("\nSwitchV found no divergence between the switch and the model.\n")
}

func printIncidents(incidents []switchv.Incident) {
	const max = 20
	for i, inc := range incidents {
		if i == max {
			fmt.Printf("  ... %d more\n", len(incidents)-max)
			break
		}
		fmt.Printf("  %s\n", inc)
	}
}
