// Command switchv validates a switch end-to-end against its P4 model: it
// pushes the pipeline, fuzzes the control plane API, and runs symbolic
// data-plane validation, printing an incident report.
//
//	switchv -role middleblock                      # in-process switch
//	switchv -connect 127.0.0.1:9559 -role wan      # remote switchd
//	switchv -role middleblock -fault asic.ttl1-no-trap
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"runtime/pprof"
	"strings"
	"sync"
	"time"

	"switchv/internal/chaos"
	"switchv/internal/coverage"
	"switchv/internal/fuzzer"
	"switchv/internal/p4/p4info"
	"switchv/internal/p4rt"
	"switchv/internal/switchsim"
	"switchv/internal/switchv"
	"switchv/internal/symbolic"
	"switchv/internal/workload"
	"switchv/models"
)

func main() {
	connect := flag.String("connect", "", "address of a remote switchd (empty = in-process switch)")
	role := flag.String("role", "middleblock", "deployment role / model name")
	faultList := flag.String("fault", "", "comma-separated faults to inject (in-process only)")
	requests := flag.Int("fuzz-requests", 100, "number of fuzz write batches")
	updates := flag.Int("fuzz-updates", 50, "updates per batch")
	seed := flag.Int64("seed", 1, "fuzzer seed")
	entries := flag.Int("entries", 200, "table entries for data-plane validation")
	branches := flag.Bool("branches", true, "use branch coverage (vs entry coverage)")
	churn := flag.Bool("churn", false, "re-apply entries with MODIFY before testing")
	skipFuzz := flag.Bool("skip-fuzz", false, "skip control plane fuzzing")
	skipData := flag.Bool("skip-dataplane", false, "skip data plane validation")
	coverageGuided := flag.Bool("coverage", false, "coverage-guided fuzzing; prints the coverage table and writes -coverage-out")
	coverageOut := flag.String("coverage-out", "coverage.json", "coverage snapshot output path (with -coverage)")
	plateau := flag.Int("plateau", 0, "stop fuzzing after N consecutive batches with no new coverage (0 = never)")
	workers := flag.Int("workers", 0, "fuzz with the parallel sharded engine using N workers (0 = sequential single-stack campaign)")
	shards := flag.Int("shards", switchv.DefaultShards, "logical shard count for -workers (results depend on it; worker count only changes speed)")
	dpWorkers := flag.Int("dp-workers", 0, "workers for data-plane generation and simulation (0 = 1; results are identical for any count)")
	dpShards := flag.Int("dp-shards", 0, "goal-shard count for data-plane generation (0 = default; results depend on it)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	precheck := flag.String("precheck", "on", "static model preflight: on (refuse on error findings), warn (report only), off (skip)")
	engine := flag.String("engine", "compiled", "reference simulator engine: compiled (closure-tree) or interp (IR walker)")
	chaosSpec := flag.String("chaos", "", "chaos schedule over the p4rt wire: comma-separated mode:@N (at RPC index N) or mode:/P (seeded ~1-in-P); modes: "+chaosModes()+"; implies the self-healing stack (in-process only)")
	chaosSeed := flag.Int64("chaos-seed", 0, "seed for periodic chaos rules (0 = -seed)")
	flag.Parse()

	pm, err := precheckMode(*precheck)
	if err != nil {
		log.Fatal(err)
	}
	eng, err := switchv.ParseEngine(*engine)
	if err != nil {
		log.Fatal(err)
	}

	stopProfile := func() {}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			log.Fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		// os.Exit skips defers, so the failure path below calls this
		// explicitly; StopCPUProfile is idempotent.
		stopProfile = func() {
			pprof.StopCPUProfile()
			f.Close()
		}
		defer stopProfile()
	}

	prog, err := models.Load(*role)
	if err != nil {
		log.Fatal(err)
	}
	info := p4info.New(prog)

	var sched *chaos.Schedule
	if *chaosSpec != "" {
		if *connect != "" {
			log.Fatal("-chaos requires the in-process switch (drop -connect); use switchvd -chaos for remote targets")
		}
		cs := *chaosSeed
		if cs == 0 {
			cs = *seed
		}
		sched, err = chaos.Parse(*chaosSpec, cs)
		if err != nil {
			log.Fatal(err)
		}
	}

	var dev p4rt.Device
	var dp switchv.DataPlane
	var wire *chaos.Wire
	if *connect != "" {
		cli, err := p4rt.Dial(*connect)
		if err != nil {
			log.Fatal(err)
		}
		defer cli.Close()
		dev, dp = cli, cli
	} else if sched != nil && !sched.Empty() {
		var closeStack func()
		dev, dp, wire, closeStack, err = chaosStack(*role, *faultList, sched)
		if err != nil {
			log.Fatal(err)
		}
		defer closeStack()
		fmt.Printf("chaos: injecting %s (seed %d) over the p4rt wire\n", sched, sched.Seed)
	} else {
		faults, err := switchsim.ParseFaults(*faultList)
		if err != nil {
			log.Fatal(err)
		}
		sw := switchsim.New(*role, faults...)
		defer sw.Close()
		dev, dp = sw, sw
	}

	h := switchv.New(info, dev, dp)
	h.Precheck = pm
	h.Reconcile = wire != nil
	if err := h.PushPipeline(); err != nil {
		log.Fatalf("pushing pipeline: %v", err)
	}
	fmt.Printf("SwitchV: validating %s switch against model %q (%d tables)\n",
		*role, prog.Name, len(prog.Tables))

	// Surface preflight findings up front; the campaigns below refuse on
	// error findings themselves (unless -precheck=warn/off).
	var dead map[string]bool
	if crep := h.PrecheckReport(); crep != nil {
		dead = crep.UnreachableSet()
		if len(crep.Findings) > 0 {
			fmt.Printf("\n== p4check preflight ==\n%s", crep.Text())
		}
	}

	// One coverage map spans both campaigns: control-plane accepts and
	// data-plane trace hits land in the same table/action counters.
	var cov *coverage.Map
	if *coverageGuided {
		cov = coverage.NewMapExcluding(info, dead)
	}

	incidents := 0
	if !*skipFuzz {
		fuzzOpts := fuzzer.Options{
			Seed:              *seed,
			NumRequests:       *requests,
			UpdatesPerRequest: *updates,
			CoverageGuided:    *coverageGuided,
			Coverage:          cov,
			PlateauBatches:    *plateau,
		}
		if *workers > 0 {
			var factory switchv.StackFactory
			var chaosEvents func() []chaos.Event
			if sched != nil && !sched.Empty() {
				factory, chaosEvents, err = chaosFactory(*role, *faultList, sched)
			} else {
				factory, err = stackFactory(*connect, *role, *faultList, *shards)
			}
			if err != nil {
				log.Fatal(err)
			}
			rep, err := switchv.RunParallelCampaign(info, switchv.ParallelOptions{
				Workers:    *workers,
				Shards:     *shards,
				Fuzz:       fuzzOpts,
				Factory:    factory,
				Precheck:   pm,
				Quarantine: chaosEvents != nil,
				Reconcile:  chaosEvents != nil,
			})
			if err != nil {
				log.Fatalf("parallel control plane campaign: %v", err)
			}
			if chaosEvents != nil {
				fmt.Printf("chaos: %d faults injected across shards\n", len(chaosEvents()))
			}
			for _, q := range rep.Quarantined {
				fmt.Printf("  shard %d QUARANTINED (seed %d): %s\n", q.Shard, q.Seed, q.Reason)
			}
			fmt.Printf("\n== p4-fuzzer (parallel: %d workers, %d shards) ==\n", rep.Workers, rep.Shards)
			fmt.Printf("batches: %d  updates: %d (%.0f entries/s)\n", rep.Batches, rep.Updates, rep.EntriesPerSecond())
			fmt.Printf("verdicts: %d must-accept, %d must-reject, %d may-reject\n",
				rep.MustAccept, rep.MustReject, rep.MayReject)
			for _, s := range rep.PerShard {
				fmt.Printf("  shard %d (worker %d, seed %d): %d batches, %d updates, %d incidents in %v\n",
					s.Shard, s.Worker, s.Seed, s.Batches, s.Updates, s.Incidents, s.Elapsed.Round(1e6))
			}
			fmt.Printf("incidents: %d (%d duplicates merged)\n", len(rep.Incidents), rep.DuplicateIncidents)
			printIncidents(rep.Incidents)
			incidents += len(rep.Incidents)
		} else {
			rep, err := h.RunControlPlane(fuzzOpts)
			if err != nil {
				log.Fatalf("control plane campaign: %v", err)
			}
			if wire != nil {
				events := wire.Events()
				fmt.Printf("chaos: survived %d injected faults:", len(events))
				for _, e := range events {
					fmt.Printf(" %s", e)
				}
				fmt.Println()
			}
			fmt.Printf("\n== p4-fuzzer ==\n")
			fmt.Printf("batches: %d  updates: %d (%.0f entries/s)\n", rep.Batches, rep.Updates, rep.EntriesPerSecond())
			fmt.Printf("verdicts: %d must-accept, %d must-reject, %d may-reject\n",
				rep.MustAccept, rep.MustReject, rep.MayReject)
			if rep.PlateauStopped {
				fmt.Printf("stopped early: coverage plateaued for %d batches\n", *plateau)
			}
			fmt.Printf("incidents: %d\n", len(rep.Incidents))
			printIncidents(rep.Incidents)
			incidents += len(rep.Incidents)
		}
	}

	if !*skipData {
		ents := workload.MustEntries(prog, *entries, *seed)
		mode := symbolic.CoverEntries
		if *branches {
			mode = symbolic.CoverBranches
		}
		rep, err := h.RunDataPlane(ents, switchv.DataPlaneOptions{
			Coverage:    mode,
			Churn:       *churn,
			CoverageMap: cov,
			Workers:     *dpWorkers,
			Shards:      *dpShards,
			Engine:      eng,
		})
		if err != nil {
			log.Fatalf("data plane campaign: %v", err)
		}
		srep := rep.SolverReport
		fmt.Printf("\n== p4-symbolic ==\n")
		fmt.Printf("entries: %d  goals: %d  covered: %d  unreachable: %d\n",
			rep.Entries, rep.Goals, rep.Covered, rep.Unreachable)
		fmt.Printf("generation: %v  testing: %v  packets: %d\n", rep.GenElapsed, rep.TestElapsed, rep.Packets)
		fmt.Printf("solver: %d checks (%d solved, %d witnessed, %d pruned, %d cached, %d precheck-skipped) over %d shards\n",
			srep.SMTChecks, srep.Solved, srep.Witnessed+srep.WitnessUnsat, srep.Pruned, srep.Cached, srep.Precheck, srep.Shards)
		fmt.Printf("        %d terms, %d clauses, %d vars; %d decisions, %d propagations, %d conflicts\n",
			srep.Terms, srep.Clauses, srep.Vars,
			srep.SATStats.Decisions, srep.SATStats.Propagations, srep.SATStats.Conflicts)
		fmt.Printf("incidents: %d\n", len(rep.Incidents))
		printIncidents(rep.Incidents)
		incidents += len(rep.Incidents)
	}

	if cov != nil {
		snap := cov.Snapshot()
		fmt.Printf("\n== coverage ==\n%s", snap.Table())
		data, err := snap.JSON()
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*coverageOut, data, 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("coverage snapshot written to %s\n", *coverageOut)
	}

	if incidents > 0 {
		fmt.Printf("\nSwitchV found %d incidents; inspect the logs above to root-cause them.\n", incidents)
		stopProfile()
		os.Exit(1)
	}
	fmt.Printf("\nSwitchV found no divergence between the switch and the model.\n")
}

// chaosModes renders the mode list for the -chaos flag help.
func chaosModes() string {
	var names []string
	for _, m := range chaos.AllModes() {
		names = append(names, string(m))
	}
	return strings.Join(names, ", ")
}

// chaosStack builds the in-process chaos-hardened stack: simulator +
// p4rt server behind a fault-injecting wire, fronted by a client with
// in-RPC retry and redial and wrapped in warm-restart self-healing. The
// client timeout is short — chaos "latency" is event-driven, so the
// timeout only bounds how long the client waits before retrying into
// the wire's held-response flush.
func chaosStack(role, faultList string, sched *chaos.Schedule) (p4rt.Device, switchv.DataPlane, *chaos.Wire, func(), error) {
	faults, err := switchsim.ParseFaults(faultList)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	sw := switchsim.New(role, faults...)
	srv := p4rt.NewServer(sw, nil)
	wire := chaos.NewWire(sched, func() (net.Conn, error) {
		c1, c2 := net.Pipe()
		if err := srv.ServeConn(c2); err != nil {
			return nil, err
		}
		return c1, nil
	})
	wire.SetRestart(func() {
		sw.Restart()        // pipeline + table state lost
		srv.ResetSessions() // replay cache lost: full process reboot
	})
	conn, err := wire.Dial()
	if err != nil {
		sw.Close()
		return nil, nil, nil, nil, err
	}
	cli := p4rt.NewClient(conn)
	cli.SetRedial(wire.Dial)
	cli.SetRetry(p4rt.Backoff{Initial: time.Millisecond, Max: 10 * time.Millisecond, Attempts: 6,
		Sleep: func(time.Duration) {}})
	cli.SetTimeout(200 * time.Millisecond)
	shd := switchv.NewSelfHealing(cli)
	closeAll := func() {
		cli.Close()
		wire.Close()
		srv.Close()
		sw.Close()
	}
	return shd, shd, wire, closeAll, nil
}

// chaosFactory builds per-shard chaos-hardened stacks for the parallel
// engine, each with an independently derived chaos stream, and an
// accessor aggregating the faults injected across all shards.
func chaosFactory(role, faultList string, sched *chaos.Schedule) (switchv.StackFactory, func() []chaos.Event, error) {
	var mu sync.Mutex
	var events []chaos.Event
	factory := func(shard int) (p4rt.Device, func(), error) {
		dev, _, wire, closeAll, err := chaosStack(role, faultList, sched.Derive(shard))
		if err != nil {
			return nil, nil, err
		}
		return dev, func() {
			mu.Lock()
			events = append(events, wire.Events()...)
			mu.Unlock()
			closeAll()
		}, nil
	}
	return factory, func() []chaos.Event {
		mu.Lock()
		defer mu.Unlock()
		return events
	}, nil
}

// stackFactory builds the per-shard switch stacks for the parallel
// engine. In-process mode gives every shard its own simulator with the
// same fault set; -connect takes a comma-separated address list, one
// switch per shard, since shards fuzzing one shared switch would
// interfere with each other's read-backs.
func stackFactory(connect, role, faultList string, shards int) (switchv.StackFactory, error) {
	if connect == "" {
		faults, err := switchsim.ParseFaults(faultList)
		if err != nil {
			return nil, err
		}
		return func(shard int) (p4rt.Device, func(), error) {
			sw := switchsim.New(role, faults...)
			return sw, func() { sw.Close() }, nil
		}, nil
	}
	addrs := strings.Split(connect, ",")
	if len(addrs) != shards {
		return nil, fmt.Errorf("-workers with -connect needs one address per shard: got %d addresses for %d shards", len(addrs), shards)
	}
	return func(shard int) (p4rt.Device, func(), error) {
		cli, err := p4rt.Dial(strings.TrimSpace(addrs[shard]))
		if err != nil {
			return nil, nil, err
		}
		return cli, func() { cli.Close() }, nil
	}, nil
}

// precheckMode parses the -precheck flag shared by the SwitchV CLIs.
func precheckMode(s string) (switchv.PrecheckMode, error) {
	switch s {
	case "on", "":
		return switchv.PrecheckOn, nil
	case "warn":
		return switchv.PrecheckWarn, nil
	case "off":
		return switchv.PrecheckOff, nil
	}
	return 0, fmt.Errorf("invalid -precheck %q (want on, warn, or off)", s)
}

func printIncidents(incidents []switchv.Incident) {
	const max = 20
	for i, inc := range incidents {
		if i == max {
			fmt.Printf("  ... %d more\n", len(incidents)-max)
			break
		}
		fmt.Printf("  %s\n", inc)
	}
}
