// Command switchv validates a switch end-to-end against its P4 model: it
// pushes the pipeline, fuzzes the control plane API, and runs symbolic
// data-plane validation, printing an incident report.
//
//	switchv -role middleblock                      # in-process switch
//	switchv -connect 127.0.0.1:9559 -role wan      # remote switchd
//	switchv -role middleblock -fault asic.ttl1-no-trap
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime/pprof"
	"strings"

	"switchv/internal/coverage"
	"switchv/internal/fuzzer"
	"switchv/internal/p4/p4info"
	"switchv/internal/p4rt"
	"switchv/internal/switchsim"
	"switchv/internal/switchv"
	"switchv/internal/symbolic"
	"switchv/internal/workload"
	"switchv/models"
)

func main() {
	connect := flag.String("connect", "", "address of a remote switchd (empty = in-process switch)")
	role := flag.String("role", "middleblock", "deployment role / model name")
	faultList := flag.String("fault", "", "comma-separated faults to inject (in-process only)")
	requests := flag.Int("fuzz-requests", 100, "number of fuzz write batches")
	updates := flag.Int("fuzz-updates", 50, "updates per batch")
	seed := flag.Int64("seed", 1, "fuzzer seed")
	entries := flag.Int("entries", 200, "table entries for data-plane validation")
	branches := flag.Bool("branches", true, "use branch coverage (vs entry coverage)")
	churn := flag.Bool("churn", false, "re-apply entries with MODIFY before testing")
	skipFuzz := flag.Bool("skip-fuzz", false, "skip control plane fuzzing")
	skipData := flag.Bool("skip-dataplane", false, "skip data plane validation")
	coverageGuided := flag.Bool("coverage", false, "coverage-guided fuzzing; prints the coverage table and writes -coverage-out")
	coverageOut := flag.String("coverage-out", "coverage.json", "coverage snapshot output path (with -coverage)")
	plateau := flag.Int("plateau", 0, "stop fuzzing after N consecutive batches with no new coverage (0 = never)")
	workers := flag.Int("workers", 0, "fuzz with the parallel sharded engine using N workers (0 = sequential single-stack campaign)")
	shards := flag.Int("shards", switchv.DefaultShards, "logical shard count for -workers (results depend on it; worker count only changes speed)")
	dpWorkers := flag.Int("dp-workers", 0, "workers for data-plane generation and simulation (0 = 1; results are identical for any count)")
	dpShards := flag.Int("dp-shards", 0, "goal-shard count for data-plane generation (0 = default; results depend on it)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	precheck := flag.String("precheck", "on", "static model preflight: on (refuse on error findings), warn (report only), off (skip)")
	engine := flag.String("engine", "compiled", "reference simulator engine: compiled (closure-tree) or interp (IR walker)")
	flag.Parse()

	pm, err := precheckMode(*precheck)
	if err != nil {
		log.Fatal(err)
	}
	eng, err := switchv.ParseEngine(*engine)
	if err != nil {
		log.Fatal(err)
	}

	stopProfile := func() {}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			log.Fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		// os.Exit skips defers, so the failure path below calls this
		// explicitly; StopCPUProfile is idempotent.
		stopProfile = func() {
			pprof.StopCPUProfile()
			f.Close()
		}
		defer stopProfile()
	}

	prog, err := models.Load(*role)
	if err != nil {
		log.Fatal(err)
	}
	info := p4info.New(prog)

	var dev p4rt.Device
	var dp switchv.DataPlane
	if *connect != "" {
		cli, err := p4rt.Dial(*connect)
		if err != nil {
			log.Fatal(err)
		}
		defer cli.Close()
		dev, dp = cli, cli
	} else {
		faults, err := switchsim.ParseFaults(*faultList)
		if err != nil {
			log.Fatal(err)
		}
		sw := switchsim.New(*role, faults...)
		defer sw.Close()
		dev, dp = sw, sw
	}

	h := switchv.New(info, dev, dp)
	h.Precheck = pm
	if err := h.PushPipeline(); err != nil {
		log.Fatalf("pushing pipeline: %v", err)
	}
	fmt.Printf("SwitchV: validating %s switch against model %q (%d tables)\n",
		*role, prog.Name, len(prog.Tables))

	// Surface preflight findings up front; the campaigns below refuse on
	// error findings themselves (unless -precheck=warn/off).
	var dead map[string]bool
	if crep := h.PrecheckReport(); crep != nil {
		dead = crep.UnreachableSet()
		if len(crep.Findings) > 0 {
			fmt.Printf("\n== p4check preflight ==\n%s", crep.Text())
		}
	}

	// One coverage map spans both campaigns: control-plane accepts and
	// data-plane trace hits land in the same table/action counters.
	var cov *coverage.Map
	if *coverageGuided {
		cov = coverage.NewMapExcluding(info, dead)
	}

	incidents := 0
	if !*skipFuzz {
		fuzzOpts := fuzzer.Options{
			Seed:              *seed,
			NumRequests:       *requests,
			UpdatesPerRequest: *updates,
			CoverageGuided:    *coverageGuided,
			Coverage:          cov,
			PlateauBatches:    *plateau,
		}
		if *workers > 0 {
			factory, err := stackFactory(*connect, *role, *faultList, *shards)
			if err != nil {
				log.Fatal(err)
			}
			rep, err := switchv.RunParallelCampaign(info, switchv.ParallelOptions{
				Workers:  *workers,
				Shards:   *shards,
				Fuzz:     fuzzOpts,
				Factory:  factory,
				Precheck: pm,
			})
			if err != nil {
				log.Fatalf("parallel control plane campaign: %v", err)
			}
			fmt.Printf("\n== p4-fuzzer (parallel: %d workers, %d shards) ==\n", rep.Workers, rep.Shards)
			fmt.Printf("batches: %d  updates: %d (%.0f entries/s)\n", rep.Batches, rep.Updates, rep.EntriesPerSecond())
			fmt.Printf("verdicts: %d must-accept, %d must-reject, %d may-reject\n",
				rep.MustAccept, rep.MustReject, rep.MayReject)
			for _, s := range rep.PerShard {
				fmt.Printf("  shard %d (worker %d, seed %d): %d batches, %d updates, %d incidents in %v\n",
					s.Shard, s.Worker, s.Seed, s.Batches, s.Updates, s.Incidents, s.Elapsed.Round(1e6))
			}
			fmt.Printf("incidents: %d (%d duplicates merged)\n", len(rep.Incidents), rep.DuplicateIncidents)
			printIncidents(rep.Incidents)
			incidents += len(rep.Incidents)
		} else {
			rep, err := h.RunControlPlane(fuzzOpts)
			if err != nil {
				log.Fatalf("control plane campaign: %v", err)
			}
			fmt.Printf("\n== p4-fuzzer ==\n")
			fmt.Printf("batches: %d  updates: %d (%.0f entries/s)\n", rep.Batches, rep.Updates, rep.EntriesPerSecond())
			fmt.Printf("verdicts: %d must-accept, %d must-reject, %d may-reject\n",
				rep.MustAccept, rep.MustReject, rep.MayReject)
			if rep.PlateauStopped {
				fmt.Printf("stopped early: coverage plateaued for %d batches\n", *plateau)
			}
			fmt.Printf("incidents: %d\n", len(rep.Incidents))
			printIncidents(rep.Incidents)
			incidents += len(rep.Incidents)
		}
	}

	if !*skipData {
		ents := workload.MustEntries(prog, *entries, *seed)
		mode := symbolic.CoverEntries
		if *branches {
			mode = symbolic.CoverBranches
		}
		rep, err := h.RunDataPlane(ents, switchv.DataPlaneOptions{
			Coverage:    mode,
			Churn:       *churn,
			CoverageMap: cov,
			Workers:     *dpWorkers,
			Shards:      *dpShards,
			Engine:      eng,
		})
		if err != nil {
			log.Fatalf("data plane campaign: %v", err)
		}
		srep := rep.SolverReport
		fmt.Printf("\n== p4-symbolic ==\n")
		fmt.Printf("entries: %d  goals: %d  covered: %d  unreachable: %d\n",
			rep.Entries, rep.Goals, rep.Covered, rep.Unreachable)
		fmt.Printf("generation: %v  testing: %v  packets: %d\n", rep.GenElapsed, rep.TestElapsed, rep.Packets)
		fmt.Printf("solver: %d checks (%d solved, %d pruned, %d cached, %d precheck-skipped) over %d shards\n",
			srep.SMTChecks, srep.Solved, srep.Pruned, srep.Cached, srep.Precheck, srep.Shards)
		fmt.Printf("        %d terms, %d clauses, %d vars; %d decisions, %d propagations, %d conflicts\n",
			srep.Terms, srep.Clauses, srep.Vars,
			srep.SATStats.Decisions, srep.SATStats.Propagations, srep.SATStats.Conflicts)
		fmt.Printf("incidents: %d\n", len(rep.Incidents))
		printIncidents(rep.Incidents)
		incidents += len(rep.Incidents)
	}

	if cov != nil {
		snap := cov.Snapshot()
		fmt.Printf("\n== coverage ==\n%s", snap.Table())
		data, err := snap.JSON()
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*coverageOut, data, 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("coverage snapshot written to %s\n", *coverageOut)
	}

	if incidents > 0 {
		fmt.Printf("\nSwitchV found %d incidents; inspect the logs above to root-cause them.\n", incidents)
		stopProfile()
		os.Exit(1)
	}
	fmt.Printf("\nSwitchV found no divergence between the switch and the model.\n")
}

// stackFactory builds the per-shard switch stacks for the parallel
// engine. In-process mode gives every shard its own simulator with the
// same fault set; -connect takes a comma-separated address list, one
// switch per shard, since shards fuzzing one shared switch would
// interfere with each other's read-backs.
func stackFactory(connect, role, faultList string, shards int) (switchv.StackFactory, error) {
	if connect == "" {
		faults, err := switchsim.ParseFaults(faultList)
		if err != nil {
			return nil, err
		}
		return func(shard int) (p4rt.Device, func(), error) {
			sw := switchsim.New(role, faults...)
			return sw, func() { sw.Close() }, nil
		}, nil
	}
	addrs := strings.Split(connect, ",")
	if len(addrs) != shards {
		return nil, fmt.Errorf("-workers with -connect needs one address per shard: got %d addresses for %d shards", len(addrs), shards)
	}
	return func(shard int) (p4rt.Device, func(), error) {
		cli, err := p4rt.Dial(strings.TrimSpace(addrs[shard]))
		if err != nil {
			return nil, nil, err
		}
		return cli, func() { cli.Close() }, nil
	}, nil
}

// precheckMode parses the -precheck flag shared by the SwitchV CLIs.
func precheckMode(s string) (switchv.PrecheckMode, error) {
	switch s {
	case "on", "":
		return switchv.PrecheckOn, nil
	case "warn":
		return switchv.PrecheckWarn, nil
	case "off":
		return switchv.PrecheckOff, nil
	}
	return 0, fmt.Errorf("invalid -precheck %q (want on, warn, or off)", s)
}

func printIncidents(incidents []switchv.Incident) {
	const max = 20
	for i, inc := range incidents {
		if i == max {
			fmt.Printf("  ... %d more\n", len(incidents)-max)
			break
		}
		fmt.Printf("  %s\n", inc)
	}
}
