// Command p4symbolic runs the test-packet generation half of SwitchV: it
// symbolically executes a P4 model with a set of table entries and prints
// the coverage goals and synthesized packets.
//
//	p4symbolic -role middleblock -entries 798 -coverage entries
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"switchv/internal/bmv2"
	"switchv/internal/p4/check"
	"switchv/internal/p4/pdpi"
	"switchv/internal/switchv"
	"switchv/internal/symbolic"
	"switchv/internal/workload"
	"switchv/models"
)

func main() {
	role := flag.String("role", "middleblock", "deployment role / model name")
	n := flag.Int("entries", 798, "number of table entries to generate")
	seed := flag.Int64("seed", 42, "workload seed")
	coverage := flag.String("coverage", "entries", "coverage mode: entries or branches")
	emit := flag.Bool("emit", false, "print each synthesized packet")
	dpWorkers := flag.Int("dp-workers", 0, "solve goals with the parallel pruning generator using N workers (0 = sequential one-check-per-goal)")
	dpShards := flag.Int("dp-shards", 0, "goal-shard count for -dp-workers (0 = default; results depend on it)")
	precheck := flag.String("precheck", "on", "static model preflight: on (refuse on error findings), warn (report only), off (skip)")
	engine := flag.String("engine", "compiled", "reference simulator engine for replaying generated packets: compiled (closure-tree) or interp (IR walker)")
	witness := flag.Bool("witness", true, "solver-free witness synthesis pre-pass (parallel generator only)")
	slice := flag.Bool("slice", true, "cone-of-influence slice restriction on per-goal checks (parallel generator only)")
	jsonOut := flag.Bool("json", false, "emit one machine-readable JSON report instead of text")
	flag.Parse()

	eng, err := switchv.ParseEngine(*engine)
	if err != nil {
		log.Fatal(err)
	}

	prog, err := models.Load(*role)
	if err != nil {
		log.Fatal(err)
	}

	switch *precheck {
	case "on", "", "warn", "off":
	default:
		log.Fatalf("invalid -precheck %q (want on, warn, or off)", *precheck)
	}

	// Static preflight: refuse defective models before the first solver
	// call, and feed the unreachable-table proof set into goal pruning.
	var dead map[string]bool
	if *precheck != "off" {
		crep := check.Cached(prog)
		if len(crep.Findings) > 0 && !*jsonOut {
			fmt.Printf("== p4check preflight ==\n%s", crep.Text())
		}
		if crep.HasErrors() && *precheck != "warn" {
			fmt.Fprintf(os.Stderr, "p4symbolic: model failed preflight with %d error finding(s); fix the model or pass -precheck=warn\n", crep.Errors())
			os.Exit(1)
		}
		dead = crep.UnreachableSet()
	}
	entries := workload.MustEntries(prog, *n, *seed)
	store := pdpi.NewStore()
	for _, e := range entries {
		if err := store.Insert(e); err != nil {
			log.Fatal(err)
		}
	}

	mode := symbolic.CoverEntries
	if *coverage == "branches" {
		mode = symbolic.CoverBranches
	}

	var packets []symbolic.TestPacket
	var rep symbolic.Report
	var execTime, genTime time.Duration
	if *dpWorkers > 0 {
		t0 := time.Now()
		packets, rep, err = symbolic.GeneratePacketsParallel(prog, store, symbolic.Options{},
			symbolic.GenOptions{Mode: mode, Workers: *dpWorkers, Shards: *dpShards,
				UnreachableTables: dead, DisableWitness: !*witness, DisableSlicing: !*slice})
		if err != nil {
			log.Fatal(err)
		}
		genTime = time.Since(t0)
	} else {
		t0 := time.Now()
		ex, err := symbolic.New(prog, store, symbolic.Options{})
		if err != nil {
			log.Fatal(err)
		}
		execTime = time.Since(t0)

		t1 := time.Now()
		packets, rep, err = ex.GeneratePackets(mode)
		if err != nil {
			log.Fatal(err)
		}
		genTime = time.Since(t1)
	}

	if !*jsonOut {
		fmt.Printf("p4-symbolic: model %q, %d entries\n", prog.Name, len(entries))
		if *dpWorkers > 0 {
			fmt.Printf("symbolic execution: %d shards (%d terms, %d clauses)\n", rep.Shards, rep.Terms, rep.Clauses)
			fmt.Printf("generation: %v for %d goals (%d covered, %d unreachable; %d solved, %d pruned, %d precheck-skipped, %d checks)\n",
				genTime.Round(time.Millisecond), rep.Goals, rep.Covered, rep.Unreachable, rep.Solved, rep.Pruned, rep.Precheck, rep.SMTChecks)
			fmt.Printf("checks avoided: %d/%d (witness %d, cache %d, prune %d)\n",
				rep.Goals-rep.SMTChecks, rep.Goals,
				rep.Witnessed+rep.WitnessUnsat, rep.Cached, rep.Pruned+rep.Precheck)
			if rep.SlicedAsserts > 0 || rep.SlicedBits > 0 {
				fmt.Printf("slicing: %d assertions and %d input bits left outside per-goal cones\n",
					rep.SlicedAsserts, rep.SlicedBits)
			}
		} else {
			fmt.Printf("symbolic execution: %v (%d terms, %d clauses)\n", execTime.Round(time.Millisecond), rep.Terms, rep.Clauses)
			fmt.Printf("generation: %v for %d goals (%d covered, %d unreachable)\n",
				genTime.Round(time.Millisecond), rep.Goals, rep.Covered, rep.Unreachable)
		}
		fmt.Printf("solver: %d decisions, %d propagations, %d conflicts (%d solve calls, %d kept learnts, %d assumption conflicts, %d cnf-reuse hits)\n",
			rep.SATStats.Decisions, rep.SATStats.Propagations, rep.SATStats.Conflicts,
			rep.SATStats.SolveCalls, rep.SATStats.KeptLearnts, rep.SATStats.AssumpConflicts, rep.CNFReuse)
	}

	// Replay the synthesized packets through the reference simulator: a
	// quick sanity check that every goal packet actually executes, and a
	// per-packet disposition for -emit.
	sim, err := switchv.NewEngine(eng, prog, store)
	if err != nil {
		log.Fatal(err)
	}
	var fwd, dropped, punted int
	outcomes := make([]*bmv2.Outcome, len(packets))
	t2 := time.Now()
	for i, pkt := range packets {
		sim.Reset()
		o, err := sim.Run(bmv2.Input{Port: pkt.Port, Packet: pkt.Data})
		if err != nil {
			log.Fatalf("simulating packet for %s: %v", pkt.GoalKey, err)
		}
		outcomes[i] = o
		switch o.Disposition {
		case bmv2.Forwarded:
			fwd++
		case bmv2.Dropped:
			dropped++
		case bmv2.Punted:
			punted++
		}
	}
	simTime := time.Since(t2)
	if *jsonOut {
		// One machine-readable object: the full generation report
		// (including sat.Stats and the witness/incremental counters) plus
		// the replay dispositions. Everything except the timings is a
		// deterministic function of (model, entries, options, shards).
		out := struct {
			Model        string          `json:"model"`
			Entries      int             `json:"entries"`
			Coverage     string          `json:"coverage"`
			Workers      int             `json:"workers"`
			Engine       string          `json:"engine"`
			Report       symbolic.Report `json:"report"`
			ChecksAvoid  int             `json:"checks_avoided"`
			Packets      int             `json:"packets"`
			Forwarded    int             `json:"forwarded"`
			Dropped      int             `json:"dropped"`
			Punted       int             `json:"punted"`
			GenerationMS float64         `json:"generation_ms"`
			SimulationMS float64         `json:"simulation_ms"`
		}{
			Model: prog.Name, Entries: len(entries), Coverage: *coverage,
			Workers: *dpWorkers, Engine: string(eng), Report: rep,
			ChecksAvoid: rep.Goals - rep.SMTChecks,
			Packets:     len(packets), Forwarded: fwd, Dropped: dropped, Punted: punted,
			GenerationMS: float64(genTime.Microseconds()) / 1e3,
			SimulationMS: float64(simTime.Microseconds()) / 1e3,
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			log.Fatal(err)
		}
		return
	}
	fmt.Printf("simulation (%s engine): %d packets in %v: %d forwarded, %d dropped, %d punted\n",
		eng, len(packets), simTime.Round(time.Millisecond), fwd, dropped, punted)
	if *emit {
		for i, pkt := range packets {
			fmt.Printf("%-60s port=%d %-9s %x\n", pkt.GoalKey, pkt.Port, outcomes[i].Disposition, pkt.Data)
		}
	}
}
