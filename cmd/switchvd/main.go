// Command switchvd runs SwitchV as a continuous fleet-validation
// daemon (§6's deployment mode): rounds of control-plane and data-plane
// campaigns against every configured target, checkpointed to a store so
// a restarted daemon resumes instead of replaying, with an HTTP status
// API.
//
//	switchvd -store /var/lib/switchvd \
//	    -target lab1=127.0.0.1:9559/middleblock \
//	    -target lab2=127.0.0.1:9560/wan \
//	    -api 127.0.0.1:8080
//
// Endpoints: /healthz, /targets, /campaigns, /incidents.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"switchv/internal/chaos"
	"switchv/internal/daemon"
	"switchv/internal/switchv"
)

// targetFlags collects repeatable -target name=addr[,addr...][/role]
// definitions.
type targetFlags []daemon.Target

func (t *targetFlags) String() string { return fmt.Sprintf("%v", []daemon.Target(*t)) }

func (t *targetFlags) Set(s string) error {
	name, rest, ok := strings.Cut(s, "=")
	if !ok || name == "" || rest == "" {
		return fmt.Errorf("want name=addr[,addr...][/role], got %q", s)
	}
	addrs, role := rest, "middleblock"
	if a, r, ok := strings.Cut(rest, "/"); ok {
		addrs, role = a, r
	}
	tgt := daemon.Target{Name: name, Role: role}
	for _, addr := range strings.Split(addrs, ",") {
		if addr = strings.TrimSpace(addr); addr != "" {
			tgt.Addrs = append(tgt.Addrs, addr)
		}
	}
	if len(tgt.Addrs) == 0 {
		return fmt.Errorf("target %q has no addresses", name)
	}
	*t = append(*t, tgt)
	return nil
}

func main() {
	var targets targetFlags
	flag.Var(&targets, "target", "target as name=addr[,addr...][/role]; repeatable")
	api := flag.String("api", "127.0.0.1:8080", "address for the HTTP status API (empty = no API)")
	storeDir := flag.String("store", "switchvd-store", "checkpoint store directory")
	seed := flag.Int64("seed", 1, "fleet root seed (round r fuzzes with a seed derived from it)")
	requests := flag.Int("requests", 40, "control-plane fuzz batches per round")
	updates := flag.Int("updates", 20, "updates per fuzz batch")
	shards := flag.Int("shards", switchv.DefaultShards, "logical shards per campaign (reports depend on it)")
	entries := flag.Int("entries", 50, "data-plane fixture entries per round")
	rounds := flag.Int("rounds", 0, "fleet rounds to run before exiting (0 = until signalled)")
	interval := flag.Duration("interval", 0, "pause between fleet rounds")
	precheck := flag.String("precheck", "on", "static model preflight: on, warn, or off")
	engine := flag.String("engine", "compiled", "reference simulator engine: compiled (closure-tree) or interp (IR walker)")
	chaosSpec := flag.String("chaos", "", "chaos schedule over every target's p4rt wire: comma-separated mode:@N or mode:/P (restart not supported against remote targets); implies -harden")
	chaosSeed := flag.Int64("chaos-seed", 0, "seed for periodic chaos rules (0 = -seed)")
	harden := flag.Bool("harden", false, "self-healing transport stack: in-RPC retry, redial, torn-write reconciliation, warm-restart recovery")
	rpcTimeout := flag.Duration("rpc-timeout", 0, "per-RPC deadline on every target connection (0 = client default 30s, or 2s when -chaos is set: each dropped response costs one deadline before the retry fires)")
	flag.Parse()

	pm, err := precheckMode(*precheck)
	if err != nil {
		log.Fatal(err)
	}
	eng, err := switchv.ParseEngine(*engine)
	if err != nil {
		log.Fatal(err)
	}
	if len(targets) == 0 {
		fmt.Fprintln(os.Stderr, "switchvd: at least one -target is required")
		os.Exit(2)
	}

	// -chaos fronts every target address with a fault-injecting MITM
	// proxy: each target addr is replaced by a local listener that
	// relays frames to the real switch while perturbing them per the
	// schedule. Restart mode needs a hook into the switch process, which
	// a remote target does not expose.
	if *chaosSpec != "" {
		cs := *chaosSeed
		if cs == 0 {
			cs = *seed
		}
		sched, err := chaos.Parse(*chaosSpec, cs)
		if err != nil {
			log.Fatal(err)
		}
		if sched.Has(chaos.ModeRestart) {
			log.Fatal("switchvd: chaos mode \"restart\" requires restarting the switch process; it is only available in-process (switchv -chaos)")
		}
		*harden = true
		if *rpcTimeout == 0 {
			*rpcTimeout = 2 * time.Second
		}
		for ti := range targets {
			for ai, addr := range targets[ti].Addrs {
				backend := addr
				wire := chaos.NewWire(sched.Derive(ti*1000+ai), func() (net.Conn, error) {
					return net.Dial("tcp", backend)
				})
				defer wire.Close()
				proxyAddr, err := wire.Listen("127.0.0.1:0")
				if err != nil {
					log.Fatalf("switchvd: chaos proxy for %s: %v", addr, err)
				}
				targets[ti].Addrs[ai] = proxyAddr.String()
				log.Printf("switchvd: chaos proxy %s -> %s (%s)", proxyAddr, addr, sched)
			}
		}
	}

	store, err := daemon.OpenStore(*storeDir)
	if err != nil {
		log.Fatal(err)
	}
	d, err := daemon.New(daemon.Config{
		Store:      store,
		Targets:    targets,
		Seed:       *seed,
		Requests:   *requests,
		Updates:    *updates,
		Shards:     *shards,
		Entries:    *entries,
		Rounds:     *rounds,
		Interval:   *interval,
		Precheck:   pm,
		Engine:     eng,
		Harden:     *harden,
		RPCTimeout: *rpcTimeout,
		Logf:       log.Printf,
	})
	if err != nil {
		log.Fatal(err)
	}

	if *api != "" {
		addr, err := d.Serve(*api)
		if err != nil {
			log.Fatalf("switchvd: status API: %v", err)
		}
		log.Printf("switchvd: status API on http://%s", addr)
	}

	// A signal stops the fleet cooperatively: in-flight shards finish
	// and checkpoint, so the next start resumes rather than replays.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		log.Printf("switchvd: stopping (in-flight shards will checkpoint)")
		d.Stop()
	}()

	log.Printf("switchvd: validating %d target(s), store %s", len(targets), *storeDir)
	start := time.Now()
	if err := d.Run(); err != nil {
		log.Fatalf("switchvd: %v", err)
	}
	log.Printf("switchvd: %d fleet round(s) completed in %v", d.Rounds(), time.Since(start).Round(time.Millisecond))
}

// precheckMode parses the -precheck flag shared by the SwitchV CLIs.
func precheckMode(s string) (switchv.PrecheckMode, error) {
	switch s {
	case "on", "":
		return switchv.PrecheckOn, nil
	case "warn":
		return switchv.PrecheckWarn, nil
	case "off":
		return switchv.PrecheckOff, nil
	}
	return 0, fmt.Errorf("invalid -precheck %q (want on, warn, or off)", s)
}
