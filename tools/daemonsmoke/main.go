// Command daemonsmoke is the end-to-end smoke test for the daemon
// deployment (wired into `make daemon-smoke` / `make ci`): it builds
// switchd and switchvd, boots a switchd with a seeded fault, points a
// one-target switchvd fleet at it, and asserts — through the daemon's
// HTTP API, the same way an operator would — that the round completes
// and the injected fault surfaces as a fleet incident record.
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"time"
)

const fault = "p4rt.read-drops-ternary"

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "daemonsmoke: FAIL: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("daemonsmoke: PASS")
}

func freePort() (string, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr, nil
}

// proc wraps a child process whose output is captured for failure
// reports and which is killed (whole process group) on cleanup.
type proc struct {
	cmd *exec.Cmd
	out strings.Builder
}

func start(name string, args ...string) (*proc, error) {
	p := &proc{cmd: exec.Command(name, args...)}
	p.cmd.Stdout = &p.out
	p.cmd.Stderr = &p.out
	p.cmd.SysProcAttr = &syscall.SysProcAttr{Setpgid: true}
	if err := p.cmd.Start(); err != nil {
		return nil, err
	}
	return p, nil
}

func (p *proc) kill() {
	if p.cmd.Process != nil {
		syscall.Kill(-p.cmd.Process.Pid, syscall.SIGKILL)
		p.cmd.Wait()
	}
}

func run() error {
	deadline := time.Now().Add(4 * time.Minute)
	tmp, err := os.MkdirTemp("", "daemonsmoke")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)

	// Build the two binaries once; `go run` would put the actual server
	// in a grandchild process that outlives a plain kill.
	switchd := filepath.Join(tmp, "switchd")
	switchvd := filepath.Join(tmp, "switchvd")
	for bin, pkg := range map[string]string{switchd: "./cmd/switchd", switchvd: "./cmd/switchvd"} {
		build := exec.Command("go", "build", "-o", bin, pkg)
		if out, err := build.CombinedOutput(); err != nil {
			return fmt.Errorf("building %s: %v\n%s", pkg, err, out)
		}
	}

	swAddr, err := freePort()
	if err != nil {
		return err
	}
	apiAddr, err := freePort()
	if err != nil {
		return err
	}

	// The switch under test, with a known control-plane fault.
	sw, err := start(switchd, "-listen", swAddr, "-role", "middleblock", "-fault", fault)
	if err != nil {
		return err
	}
	defer sw.kill()
	if err := waitTCP(swAddr, deadline); err != nil {
		return fmt.Errorf("switchd never came up: %v\n%s", err, sw.out.String())
	}

	// The daemon: unbounded rounds with a long interval, so the API
	// stays up for the assertions below; stopped with SIGTERM after.
	vd, err := start(switchvd,
		"-store", filepath.Join(tmp, "store"),
		"-target", "smoke=" + swAddr + "/middleblock",
		"-api", apiAddr,
		"-rounds", "0", "-interval", "1h",
		"-seed", "1", "-requests", "40", "-updates", "20", "-shards", "1", "-entries", "16")
	if err != nil {
		return err
	}
	defer vd.kill()

	// Round 1 done?
	if err := pollJSON(apiAddr, "/healthz", deadline, func(v map[string]any) bool {
		n, _ := v["rounds"].(float64)
		return v["status"] == "ok" && n >= 1
	}); err != nil {
		return fmt.Errorf("round never completed: %v\nswitchvd output:\n%s\nswitchd output:\n%s",
			err, vd.out.String(), sw.out.String())
	}

	// The target is healthy and advanced.
	var targets []map[string]any
	if err := getJSON(apiAddr, "/targets", &targets); err != nil {
		return err
	}
	if len(targets) != 1 || targets[0]["name"] != "smoke" || targets[0]["healthy"] != true {
		return fmt.Errorf("unexpected /targets: %v", targets)
	}

	// The injected fault surfaced as a deduplicated fleet incident.
	var records []map[string]any
	if err := getJSON(apiAddr, "/incidents", &records); err != nil {
		return err
	}
	found := false
	for _, r := range records {
		if r["tool"] == "p4-fuzzer" {
			found = true
		}
	}
	if !found {
		return fmt.Errorf("no p4-fuzzer incident record for fault %s; /incidents: %v\nswitchvd output:\n%s",
			fault, records, vd.out.String())
	}

	// Cooperative shutdown on SIGTERM.
	syscall.Kill(vd.cmd.Process.Pid, syscall.SIGTERM)
	done := make(chan error, 1)
	go func() { done <- vd.cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			return fmt.Errorf("switchvd exited uncleanly after SIGTERM: %v\n%s", err, vd.out.String())
		}
	case <-time.After(time.Until(deadline)):
		return fmt.Errorf("switchvd ignored SIGTERM\n%s", vd.out.String())
	}
	return nil
}

func waitTCP(addr string, deadline time.Time) error {
	for time.Now().Before(deadline) {
		if c, err := net.DialTimeout("tcp", addr, time.Second); err == nil {
			c.Close()
			return nil
		}
		time.Sleep(100 * time.Millisecond)
	}
	return fmt.Errorf("timeout dialing %s", addr)
}

func getJSON(apiAddr, path string, v any) error {
	resp, err := http.Get("http://" + apiAddr + path)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		return fmt.Errorf("GET %s: %s: %s", path, resp.Status, body)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

func pollJSON(apiAddr, path string, deadline time.Time, ok func(map[string]any) bool) error {
	for time.Now().Before(deadline) {
		var v map[string]any
		if err := getJSON(apiAddr, path, &v); err == nil && ok(v) {
			return nil
		}
		time.Sleep(500 * time.Millisecond)
	}
	return fmt.Errorf("timeout polling %s", path)
}
