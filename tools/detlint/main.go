// Command detlint enforces the repo's determinism invariants on result
// paths. Campaign results must be a pure function of (model, entries,
// seed, shard count) — see the determinism contracts in
// internal/switchv and internal/symbolic — so the checked packages must
// not consult wall-clock time or process-global randomness when
// computing results, and must not let map iteration order leak into
// ordered output.
//
//	detlint ./internal/fuzzer ./internal/symbolic ...
//
// Rules:
//
//	timenow    time.Now / time.Since outside elapsed-time measurement
//	           (allowed when the result lands in a variable or field
//	           whose name marks it as timing: start, begin, elapsed,
//	           deadline, t0, t1)
//	timeafter  time.After / time.Tick in result-path code — both race
//	           the scheduler against real time, so select arms taken
//	           under load differ from arms taken idle; use a context
//	           deadline or an injected clock
//	globalrand calls through the global math/rand source (rand.Intn,
//	           rand.Shuffle, ...); seeded *rand.Rand instances and
//	           rand.New/NewSource are fine
//	maprange   a range over a map whose body appends to an outer slice
//	           that the function never sorts — iteration order would
//	           leak into the slice's order
//
// A finding can be waived where determinism is genuinely not at stake
// with a trailing or preceding comment:
//
//	//detlint:allow <rule> — <why this use is deterministic/benign>
//
// The checker is deliberately stdlib-only (go/parser + go/types with a
// lenient, import-less type-checker): it under-reports across package
// boundaries rather than requiring the x/tools machinery.
package main

import (
	"flag"
	"fmt"
	"os"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: detlint <package-dir>...\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}
	var all []finding
	for _, dir := range flag.Args() {
		fs, err := lintDir(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "detlint: %v\n", err)
			os.Exit(2)
		}
		all = append(all, fs...)
	}
	sortFindings(all)
	for _, f := range all {
		fmt.Printf("%s:%d: %s: %s\n", f.pos.Filename, f.pos.Line, f.rule, f.msg)
	}
	if len(all) > 0 {
		os.Exit(1)
	}
}
