package main

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// lintSource runs the linter over one synthetic file.
func lintSource(t *testing.T, src string) []finding {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "src.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	fs := lintFiles(fset, []*ast.File{f})
	sortFindings(fs)
	return fs
}

func rules(fs []finding) []string {
	var out []string
	for _, f := range fs {
		out = append(out, f.rule)
	}
	return out
}

func TestTimeNow(t *testing.T) {
	fs := lintSource(t, `package p
import "time"
func stamp() int64 { return time.Now().UnixNano() }
`)
	if len(fs) != 1 || fs[0].rule != "timenow" {
		t.Fatalf("want one timenow finding, got %v", fs)
	}
	if !strings.Contains(fs[0].msg, "wall-clock") {
		t.Fatalf("message should explain the invariant: %q", fs[0].msg)
	}
}

func TestTimeNowMeasurementAllowed(t *testing.T) {
	fs := lintSource(t, `package p
import "time"
type rep struct{ Elapsed time.Duration }
func run(r *rep) {
	start := time.Now()
	r.Elapsed = time.Since(start)
}
`)
	if len(fs) != 0 {
		t.Fatalf("elapsed-time measurement must not be flagged: %v", fs)
	}
}

func TestTimeNowShadowedPackage(t *testing.T) {
	fs := lintSource(t, `package p
type clock struct{}
func (clock) Now() int { return 0 }
func f() int {
	var time clock
	return time.Now()
}
`)
	if len(fs) != 0 {
		t.Fatalf("a local variable named time is not the time package: %v", fs)
	}
}

func TestTimeAfter(t *testing.T) {
	fs := lintSource(t, `package p
import "time"
func wait(ch chan int) int {
	select {
	case v := <-ch:
		return v
	case <-time.After(time.Second):
		return -1
	}
}
func tick() <-chan time.Time { return time.Tick(time.Second) }
`)
	if got := rules(fs); len(got) != 2 || got[0] != "timeafter" || got[1] != "timeafter" {
		t.Fatalf("want timeafter findings for After and Tick, got %v", fs)
	}
	if !strings.Contains(fs[0].msg, "injected clock") {
		t.Fatalf("message should name the remedy: %q", fs[0].msg)
	}
}

func TestTimeAfterWaived(t *testing.T) {
	fs := lintSource(t, `package p
import "time"
func wait(ch chan int) int {
	select {
	case v := <-ch:
		return v
	case <-time.After(time.Second): //detlint:allow timeafter — shutdown path, result already sealed
		return -1
	}
}
`)
	if len(fs) != 0 {
		t.Fatalf("waived time.After must not be flagged: %v", fs)
	}
}

func TestTimeAfterShadowedPackage(t *testing.T) {
	fs := lintSource(t, `package p
type clock struct{}
func (clock) After(d int) int { return d }
func f() int {
	var time clock
	return time.After(1)
}
`)
	if len(fs) != 0 {
		t.Fatalf("a local variable named time is not the time package: %v", fs)
	}
}

func TestGlobalRand(t *testing.T) {
	fs := lintSource(t, `package p
import "math/rand"
func pick(n int) int { return rand.Intn(n) }
func seeded(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
`)
	if got := rules(fs); len(got) != 1 || got[0] != "globalrand" {
		t.Fatalf("want exactly the rand.Intn finding, got %v", fs)
	}
	if fs[0].pos.Line != 3 {
		t.Fatalf("finding should be on the rand.Intn line, got line %d", fs[0].pos.Line)
	}
}

func TestMapRange(t *testing.T) {
	fs := lintSource(t, `package p
func leak(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}
`)
	if got := rules(fs); len(got) != 1 || got[0] != "maprange" {
		t.Fatalf("want one maprange finding, got %v", fs)
	}
}

func TestMapRangeSortedOK(t *testing.T) {
	fs := lintSource(t, `package p
import "sort"
func keys(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
`)
	if len(fs) != 0 {
		t.Fatalf("sorted accumulation must not be flagged: %v", fs)
	}
}

func TestMapRangeLoopLocalOK(t *testing.T) {
	fs := lintSource(t, `package p
func sum(m map[string][]int) int {
	n := 0
	for _, vs := range m {
		var local []int
		local = append(local, vs...)
		n += len(local)
	}
	return n
}
`)
	if len(fs) != 0 {
		t.Fatalf("a slice local to the loop body cannot leak order: %v", fs)
	}
}

func TestSliceRangeOK(t *testing.T) {
	fs := lintSource(t, `package p
func copyAll(in []int) []int {
	var out []int
	for _, v := range in {
		out = append(out, v)
	}
	return out
}
`)
	if len(fs) != 0 {
		t.Fatalf("range over a slice is ordered; must not be flagged: %v", fs)
	}
}

func TestAllowDirective(t *testing.T) {
	fs := lintSource(t, `package p
import "time"
func stampTrailing() int64 {
	return time.Now().UnixNano() //detlint:allow timenow — log decoration only
}
func stampPreceding() int64 {
	//detlint:allow timenow — log decoration only
	return time.Now().UnixNano()
}
func stampFlagged() int64 {
	return time.Now().UnixNano()
}
`)
	if len(fs) != 1 || fs[0].pos.Line != 11 {
		t.Fatalf("only the unannotated call should be flagged, got %v", fs)
	}
}

func TestAllowDirectiveWrongRule(t *testing.T) {
	fs := lintSource(t, `package p
import "time"
func stamp() int64 {
	return time.Now().UnixNano() //detlint:allow maprange
}
`)
	if got := rules(fs); len(got) != 1 || got[0] != "timenow" {
		t.Fatalf("an allow for a different rule must not suppress timenow: %v", fs)
	}
}

// TestRepoPackagesClean is the invariant the lint target enforces in CI:
// the determinism-critical packages carry no findings (modulo explicit
// //detlint:allow waivers, which this test exercises end-to-end).
func TestRepoPackagesClean(t *testing.T) {
	for _, dir := range []string{
		"../../internal/fuzzer",
		"../../internal/symbolic",
		"../../internal/switchv",
		"../../internal/coverage",
		"../../internal/bugdb",
		"../../internal/oracle",
		"../../internal/packet",
	} {
		fs, err := lintDir(dir)
		if err != nil {
			t.Fatalf("%s: %v", dir, err)
		}
		for _, f := range fs {
			t.Errorf("%s:%d: %s: %s", f.pos.Filename, f.pos.Line, f.rule, f.msg)
		}
	}
}
