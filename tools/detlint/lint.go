package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// finding is one rule violation at a source position.
type finding struct {
	pos  token.Position
	rule string
	msg  string
}

// ruleNames is the closed set of rule identifiers, used to parse
// //detlint:allow directives.
var ruleNames = map[string]bool{
	"timenow":    true,
	"timeafter":  true,
	"globalrand": true,
	"maprange":   true,
}

// lintDir parses the non-test .go files of one package directory,
// type-checks them leniently, and runs every rule.
func lintDir(dir string) ([]finding, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("%s: no non-test Go files", dir)
	}
	return lintFiles(fset, files), nil
}

// lintFiles type-checks the files of one package and runs the rules.
// Type checking is best-effort: imports resolve to empty stub packages,
// so cross-package types stay unknown and the map-range rule simply
// skips expressions it cannot type (under-reporting, never crashing).
func lintFiles(fset *token.FileSet, files []*ast.File) []finding {
	info := &types.Info{
		Types: map[ast.Expr]types.TypeAndValue{},
		Defs:  map[*ast.Ident]types.Object{},
		Uses:  map[*ast.Ident]types.Object{},
	}
	conf := types.Config{
		Error:    func(error) {}, // stub imports guarantee errors; ignore them
		Importer: stubImporter{},
	}
	conf.Check(files[0].Name.Name, fset, files, info) //nolint:errcheck // lenient by design

	var out []finding
	for _, f := range files {
		l := &linter{fset: fset, info: info, file: f, allow: allowDirectives(fset, f)}
		l.run()
		out = append(out, l.findings...)
	}
	return out
}

// stubImporter resolves every import path to an empty, complete
// package. Member lookups through it fail — as type errors the lenient
// config ignores — while package identifiers still resolve, which is
// all the syntactic rules need.
type stubImporter struct{}

func (stubImporter) Import(path string) (*types.Package, error) {
	base := path
	if i := strings.LastIndex(path, "/"); i >= 0 {
		base = path[i+1:]
	}
	pkg := types.NewPackage(path, base)
	pkg.MarkComplete()
	return pkg, nil
}

// allowDirectives collects //detlint:allow lines: line number -> set of
// waived rules. A directive suppresses findings on its own line and on
// the line directly below (so it can trail the statement or precede it).
func allowDirectives(fset *token.FileSet, f *ast.File) map[int]map[string]bool {
	out := map[int]map[string]bool{}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimPrefix(c.Text, "//")
			text = strings.TrimSpace(text)
			if !strings.HasPrefix(text, "detlint:allow") {
				continue
			}
			line := fset.Position(c.Pos()).Line
			if out[line] == nil {
				out[line] = map[string]bool{}
			}
			for _, field := range strings.Fields(strings.TrimPrefix(text, "detlint:allow")) {
				if ruleNames[field] {
					out[line][field] = true
				} else {
					break // rules come first; anything else starts the rationale
				}
			}
		}
	}
	return out
}

// timingName matches identifiers that mark a time.Now/Since result as
// elapsed-time measurement rather than result data.
var timingName = regexp.MustCompile(`(?i)(start|begin|elapsed|deadline|duration|took|t0|t1)`)

type linter struct {
	fset     *token.FileSet
	info     *types.Info
	file     *ast.File
	allow    map[int]map[string]bool
	findings []finding
}

func (l *linter) report(pos token.Pos, rule, format string, args ...any) {
	p := l.fset.Position(pos)
	if l.allow[p.Line][rule] || l.allow[p.Line-1][rule] {
		return
	}
	l.findings = append(l.findings, finding{pos: p, rule: rule, msg: fmt.Sprintf(format, args...)})
}

func (l *linter) run() {
	timeName := importName(l.file, "time")
	randName := importName(l.file, "math/rand")
	sortName := importName(l.file, "sort")

	// Pass 1: mark time.Now/Since calls whose result lands in a
	// timing-named variable or field as measurement, not result data.
	measured := map[*ast.CallExpr]bool{}
	if timeName != "" {
		ast.Inspect(l.file, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			timing := false
			for _, lhs := range as.Lhs {
				if timingName.MatchString(exprString(lhs)) {
					timing = true
				}
			}
			if !timing {
				return true
			}
			for _, rhs := range as.Rhs {
				ast.Inspect(rhs, func(m ast.Node) bool {
					if call, ok := m.(*ast.CallExpr); ok && l.isPkgCall(call, timeName, "time") != "" {
						measured[call] = true
					}
					return true
				})
			}
			return true
		})
	}

	ast.Inspect(l.file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if timeName != "" {
			switch sel := l.isPkgCall(call, timeName, "time"); sel {
			case "Now", "Since":
				if !measured[call] {
					l.report(call.Pos(), "timenow",
						"time.%s outside elapsed-time measurement: results must not depend on wall-clock time", sel)
				}
			case "After", "Tick":
				l.report(call.Pos(), "timeafter",
					"time.%s races the scheduler against real time: use a context deadline or an injected clock", sel)
			}
		}
		if randName != "" {
			if sel := l.isPkgCall(call, randName, "math/rand"); sel != "" && sel != "New" && sel != "NewSource" {
				l.report(call.Pos(), "globalrand",
					"rand.%s uses the process-global source: thread a seeded *rand.Rand instead", sel)
			}
		}
		return true
	})

	l.checkMapRanges(sortName)
}

// isPkgCall reports the selector name when call is pkgName.Sel(...) and
// pkgName resolves to the import of pkgPath (not a shadowing variable);
// "" otherwise.
func (l *linter) isPkgCall(call *ast.CallExpr, pkgName, pkgPath string) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok || id.Name != pkgName {
		return ""
	}
	if obj, ok := l.info.Uses[id]; ok {
		pn, ok := obj.(*types.PkgName)
		if !ok || pn.Imported().Path() != pkgPath {
			return "" // a local variable shadows the package name
		}
	}
	return sel.Sel.Name
}

// checkMapRanges flags `for k := range m` over a map whose body appends
// to a slice declared outside the loop, when the enclosing function
// never sorts that slice: map iteration order would leak into the
// slice's element order.
func (l *linter) checkMapRanges(sortName string) {
	for _, decl := range l.file.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok || fn.Body == nil {
			continue
		}
		// Every expression the function passes to a sort.* call is
		// considered order-laundered.
		sorted := map[string]bool{}
		if sortName != "" {
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || len(call.Args) == 0 {
					return true
				}
				if l.isPkgCall(call, sortName, "sort") != "" {
					sorted[exprString(call.Args[0])] = true
				}
				return true
			})
		}
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok || !l.isMapType(rs.X) {
				return true
			}
			ast.Inspect(rs.Body, func(m ast.Node) bool {
				call, ok := m.(*ast.CallExpr)
				if !ok {
					return true
				}
				fun, ok := call.Fun.(*ast.Ident)
				if !ok || fun.Name != "append" || len(call.Args) == 0 {
					return true
				}
				target := exprString(call.Args[0])
				if target == "" || sorted[target] {
					return true
				}
				if id, ok := call.Args[0].(*ast.Ident); ok {
					if obj := l.objectOf(id); obj != nil && rs.Pos() <= obj.Pos() && obj.Pos() <= rs.End() {
						return true // per-iteration slice; order does not escape the loop
					}
				}
				l.report(call.Pos(), "maprange",
					"append to %q inside a map range without a later sort: iteration order leaks into the slice", target)
				return true
			})
			return true
		})
	}
}

func (l *linter) isMapType(e ast.Expr) bool {
	tv, ok := l.info.Types[e]
	if !ok || tv.Type == nil {
		return false // cross-package type the stub importer cannot resolve
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

func (l *linter) objectOf(id *ast.Ident) types.Object {
	if obj := l.info.Defs[id]; obj != nil {
		return obj
	}
	return l.info.Uses[id]
}

// importName returns the identifier the file uses for an import path
// ("" if not imported): the explicit alias, or the path's base name.
func importName(f *ast.File, path string) string {
	for _, imp := range f.Imports {
		p := strings.Trim(imp.Path.Value, `"`)
		if p != path {
			continue
		}
		if imp.Name != nil {
			if imp.Name.Name == "_" || imp.Name.Name == "." {
				return ""
			}
			return imp.Name.Name
		}
		if i := strings.LastIndex(p, "/"); i >= 0 {
			return p[i+1:]
		}
		return p
	}
	return ""
}

// exprString renders the identifier/selector spine of an expression
// ("rep.Elapsed", "keys"); "" for shapes the rules do not track.
func exprString(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		if base := exprString(x.X); base != "" {
			return base + "." + x.Sel.Name
		}
		return x.Sel.Name
	case *ast.IndexExpr:
		return exprString(x.X)
	case *ast.StarExpr:
		return exprString(x.X)
	}
	return ""
}

// sortFindings orders findings by file, then line (used by tests).
func sortFindings(fs []finding) {
	sort.Slice(fs, func(i, j int) bool {
		if fs[i].pos.Filename != fs[j].pos.Filename {
			return fs[i].pos.Filename < fs[j].pos.Filename
		}
		return fs[i].pos.Line < fs[j].pos.Line
	})
}
