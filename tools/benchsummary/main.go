// Command benchsummary distills a `go test -json` benchmark stream into
// a compact, deterministic summary: one JSON object mapping each
// benchmark (sub)name to its reported metrics (ns/op plus every
// b.ReportMetric unit — goals, smt-checks, pruned, witnessed, pps, ...).
// The raw stream interleaves timestamps, RUN lines, and per-event
// records that make diffs across commits unreadable; the summary sorts
// keys and drops everything non-metric so BENCH_* trajectories diff
// cleanly. Timing metrics still vary run to run, of course — the
// determinism claim is about format and ordering, not wall-clock.
//
//	benchsummary BENCH_symbolic.json            # writes BENCH_symbolic.summary.json
//	benchsummary -o - BENCH_symbolic.json       # writes to stdout
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
)

// event is the subset of test2json's record we consume.
type event struct {
	Action string
	Output string
}

// parseBenchLine parses one benchmark result line
// ("BenchmarkX/sub-4 <tab> 1 <tab> 12345 ns/op <tab> 47.0 smt-checks")
// into its name (GOMAXPROCS suffix stripped) and metric map, or ok=false
// for any other output line.
func parseBenchLine(line string) (name string, metrics map[string]float64, ok bool) {
	if !strings.HasPrefix(line, "Benchmark") || !strings.Contains(line, "\t") {
		return "", nil, false
	}
	fields := strings.Split(line, "\t")
	name = strings.TrimSpace(fields[0])
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	metrics = map[string]float64{}
	for _, f := range fields[1:] {
		toks := strings.Fields(f)
		if len(toks) != 2 {
			continue // the bare iteration count, or malformed
		}
		v, err := strconv.ParseFloat(toks[0], 64)
		if err != nil {
			continue
		}
		metrics[toks[1]] = v
	}
	if len(metrics) == 0 {
		return "", nil, false
	}
	return name, metrics, true
}

func summarize(in *os.File) (map[string]map[string]float64, error) {
	// test2json splits one logical result line across several "output"
	// events (the name and the metrics arrive separately, newline-free),
	// so reassemble the raw text stream first and line-split that.
	var raw strings.Builder
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		var ev event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			return nil, fmt.Errorf("not a go test -json stream: %v", err)
		}
		if ev.Action == "output" {
			raw.WriteString(ev.Output)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	sum := map[string]map[string]float64{}
	for _, line := range strings.Split(raw.String(), "\n") {
		name, metrics, ok := parseBenchLine(strings.TrimSpace(line))
		if !ok {
			continue
		}
		// A repeated name (from -count > 1) keeps the last run's values.
		sum[name] = metrics
	}
	return sum, nil
}

func main() {
	out := flag.String("o", "", `output path ("-" for stdout; default <input>.summary.json)`)
	flag.Parse()
	if flag.NArg() != 1 {
		log.Fatal("usage: benchsummary [-o out.json] BENCH_x.json")
	}
	path := flag.Arg(0)
	in, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer in.Close()
	sum, err := summarize(in)
	if err != nil {
		log.Fatalf("%s: %v", path, err)
	}
	if len(sum) == 0 {
		log.Fatalf("%s: no benchmark result lines found", path)
	}
	// encoding/json sorts map keys, so the summary is byte-stable for
	// identical metric values.
	buf, err := json.MarshalIndent(sum, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	buf = append(buf, '\n')
	dst := *out
	if dst == "" {
		dst = strings.TrimSuffix(path, ".json") + ".summary.json"
	}
	if dst == "-" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(dst, buf, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("benchsummary: %s: %d benchmarks -> %s\n", path, len(sum), dst)
}
