GO ?= go

.PHONY: ci build vet test race matrix bench bench-parallel bench-symbolic

# ci is the gate every change must pass: build, vet, the full test suite
# under the race detector, and the fault-detection matrix.
ci: build vet race matrix

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# matrix runs the fault-detection matrix: every injectable fault must be
# caught, and the union of all fixtures must stay incident-free.
matrix:
	$(GO) test -short -run 'TestFaultMatrix' ./internal/switchv

# bench reruns the paper-evaluation benchmarks once each and records the
# parallel-engine scaling run as machine-readable JSON.
bench: bench-parallel bench-symbolic
	$(GO) test -run '^$$' -bench . -benchtime 1x .

bench-parallel:
	$(GO) test -run '^$$' -bench 'BenchmarkParallelCampaign' -benchtime 1x -json . > BENCH_parallel.json

# bench-symbolic records the data-plane generation ablation (serial vs
# pruned vs pruned+parallel) with its built-in reduction/identity/speedup
# gates as machine-readable JSON.
bench-symbolic:
	$(GO) test -run '^$$' -bench 'BenchmarkDataPlaneGen' -benchtime 1x -json . > BENCH_symbolic.json
