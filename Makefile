GO ?= go

.PHONY: ci build vet test race bench

# ci is the gate every change must pass: build, vet, and the full test
# suite under the race detector.
ci: build vet race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench reruns the paper-evaluation benchmarks once each.
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x .
