GO ?= go

.PHONY: ci build vet lint test race matrix chaos precheck analyze daemon-smoke fuzz-smoke bench bench-parallel bench-symbolic bench-dataplane

# ci is the gate every change must pass: build, vet, the determinism
# lint, the full test suite under the race detector, the fault-detection
# matrix, the chaos survival matrix, the static model preflight, the
# zero-findings analyzer gate, and the daemon smoke test.
ci: build vet lint race matrix chaos precheck analyze daemon-smoke fuzz-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# lint enforces the determinism invariants on result-path packages: no
# wall-clock time or process-global randomness in results, no map
# iteration order leaking into ordered output (see tools/detlint).
lint:
	$(GO) run ./tools/detlint ./internal/fuzzer ./internal/symbolic ./internal/switchv ./internal/coverage ./internal/daemon ./internal/p4/compile ./internal/chaos ./internal/sat ./internal/smt ./internal/bdd ./internal/bugdb ./internal/oracle ./internal/packet

# matrix runs the fault-detection matrix: every injectable fault must be
# caught, and the union of all fixtures must stay incident-free.
matrix:
	$(GO) test -short -run 'TestFaultMatrix' ./internal/switchv

# chaos runs the survival bijection matrix under the race detector:
# every chaos mode must leave a hardened campaign's canonical report
# byte-identical to the chaos-free run, and must break the unhardened
# stack (see internal/chaos/survival_test.go).
chaos:
	$(GO) test -race -run 'TestSurvival' ./internal/chaos

# precheck runs the static preflight analyzer over every P4 model in the
# repo (models/ plus any example models); error-severity findings fail.
precheck:
	$(GO) run ./cmd/p4check $$(find models examples -name '*.p4' | sort)

# analyze enforces zero findings of ANY severity on every model shipped
# under models/ — stricter than precheck, which only blocks on errors.
# p4check exits 1 on any finding, so the target fails on the first warn.
analyze:
	$(GO) run ./cmd/p4check $$(find models -name '*.p4' | sort)

# daemon-smoke boots a faulty switchd over TCP, runs a one-target
# switchvd round against it, and asserts through the HTTP API that the
# fault surfaced as a fleet incident record.
daemon-smoke:
	$(GO) run ./tools/daemonsmoke

# fuzz-smoke runs the differential fuzzers for a short burst each: the
# interpreter-vs-compiled engine fuzzer (arbitrary frames must produce
# bit-identical outcomes), the witness-vs-solver generation fuzzer
# (fuzzed workloads must reach identical per-goal verdicts with and
# without the solver-free pre-pass), and the sliced-vs-full-blast fuzzer
# (cone-of-influence slice restriction must never flip a verdict).
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz 'FuzzDifferentialEngines' -fuzztime 10s ./internal/p4/compile
	$(GO) test -run '^$$' -fuzz 'FuzzWitnessVsSolver' -fuzztime 10s ./internal/symbolic
	$(GO) test -run '^$$' -fuzz 'FuzzSlicedVsFullBlast' -fuzztime 10s ./internal/symbolic

# bench reruns the paper-evaluation benchmarks once each and records the
# parallel-engine scaling run as machine-readable JSON.
bench: bench-parallel bench-symbolic bench-dataplane
	$(GO) test -run '^$$' -bench . -benchtime 1x .

# Each bench-* target records the raw `go test -json` stream and then
# distills it into a compact deterministic summary (benchmark name ->
# sorted metrics) so BENCH_* trajectories diff cleanly across commits.
bench-parallel:
	$(GO) test -run '^$$' -bench 'BenchmarkParallelCampaign' -benchtime 1x -json . > BENCH_parallel.json
	$(GO) run ./tools/benchsummary BENCH_parallel.json

# bench-symbolic records the data-plane generation ablation (serial vs
# pruned vs pruned+parallel+witness) with its built-in reduction/
# identity/check-budget/speedup gates as machine-readable JSON.
bench-symbolic:
	$(GO) test -run '^$$' -bench 'BenchmarkDataPlaneGen' -benchtime 1x -json . > BENCH_symbolic.json
	$(GO) run ./tools/benchsummary BENCH_symbolic.json

# bench-dataplane records the interpreter-vs-compiled packets/sec
# comparison, including its built-in >= 10x single-thread speedup gate,
# as machine-readable JSON.
bench-dataplane:
	$(GO) test -run '^$$' -bench 'BenchmarkCompiledVsInterp' -benchtime 1x -json . > BENCH_dataplane.json
	$(GO) run ./tools/benchsummary BENCH_dataplane.json
